"""Host-side Verbs API (the libibverbs equivalent).

These helpers drive a :class:`~repro.cpu.HostThread` through the standard
flow: register memory, create CQ/QP, connect a QP pair, post send/receive
work requests, poll completions.  The GPU ports of ``ibv_post_send`` /
``ibv_post_recv`` / ``ibv_poll_cq`` (§IV-B) live in
:mod:`repro.core.gpu_verbs` and follow the same wire contract.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cpu import HostThread
from ..errors import VerbsError
from ..memory import AddressRange
from ..node import Node
from ..sim import NULL_SPAN
from .cq import CQE_BYTES, CompletionQueue, Cqe
from .hca import Hca, encode_doorbell
from .qp import QueuePair
from .wqe import WQE_BYTES, Wqe

# CPU-side instruction costs: the host build is the same libibverbs code but
# the CPU retires it far faster (§V-B1: "on host side the overhead for the
# work request generation is negligible").
HOST_POST_SEND_INSTRUCTIONS = 442
HOST_POST_RECV_INSTRUCTIONS = 180
HOST_POLL_CQ_INSTRUCTIONS = 283


@dataclass
class CqConsumer:
    """Software consumer state for one CQ."""

    cq: CompletionQueue
    consumer_index: int = 0

    @property
    def slot_addr(self) -> int:
        return self.cq.slot_addr(self.consumer_index)


class IbResources:
    """Per-node collection of verbs objects, with allocation helpers that
    place queue buffers on host or GPU memory ('bufOnHost'/'bufOnGPU')."""

    def __init__(self, node: Node, hca: Hca) -> None:
        self.node = node
        self.hca = hca

    def _alloc(self, size: int, location: str) -> AddressRange:
        if location == "host":
            return self.node.host_malloc(size)
        if location == "gpu":
            return self.node.gpu_malloc(size)
        raise VerbsError(f"bad buffer location {location!r}")

    def create_cq(self, location: str = "host",
                  entries: int | None = None) -> CompletionQueue:
        entries = entries or self.hca.config.cq_entries
        buf = self._alloc(entries * CQE_BYTES, location)
        return self.hca.create_cq(buf, entries, location)

    def create_qp(self, location: str = "host",
                  send_cq: CompletionQueue | None = None,
                  recv_cq: CompletionQueue | None = None) -> QueuePair:
        cfg = self.hca.config
        send_cq = send_cq or self.create_cq(location)
        recv_cq = recv_cq or self.create_cq(location)
        sq = self._alloc(cfg.sq_entries * WQE_BYTES, location)
        rq = self._alloc(cfg.rq_entries * WQE_BYTES, location)
        return self.hca.create_qp(sq, rq, send_cq, recv_cq, location)


def connect_qps(qp_a: QueuePair, node_a_id: int,
                qp_b: QueuePair, node_b_id: int) -> None:
    """Out-of-band connection setup (what the subnet manager + CM do)."""
    qp_a.to_init()
    qp_b.to_init()
    qp_a.to_rtr(node_b_id, qp_b.qp_num)
    qp_b.to_rtr(node_a_id, qp_a.qp_num)
    qp_a.to_rts()
    qp_b.to_rts()


# --- posting ------------------------------------------------------------------

def ibv_post_send(ctx: HostThread, hca: Hca, qp: QueuePair, wqe: Wqe,
                  producer_index: int):
    """Post one send WR from the CPU: build the big-endian WQE, write it to
    the SQ ring, ring the doorbell.  ``producer_index`` is the caller's SQ
    producer counter *before* this post; returns the new value."""
    qp.require_rts()
    trc = ctx.sim.tracer
    span = (trc.begin("ib.api", "ibv_post_send", track=ctx.track,
                      qp=qp.qp_num, bytes=wqe.length)
            if trc.enabled else NULL_SPAN)
    yield from ctx.compute(HOST_POST_SEND_INSTRUCTIONS)
    yield from ctx.write(qp.sq_slot_addr(producer_index), wqe.encode())
    yield from ctx.write(hca.doorbell_addr(qp),
                         encode_doorbell(producer_index + 1).to_bytes(8, "little"))
    span.end()
    return producer_index + 1


def ibv_post_recv(ctx: HostThread, hca: Hca, qp: QueuePair, wqe: Wqe,
                  producer_index: int):
    """Post one receive WR: write the WQE to the RQ ring and ring the RQ
    doorbell.  Returns the new producer index."""
    qp.require_rtr()
    trc = ctx.sim.tracer
    span = (trc.begin("ib.api", "ibv_post_recv", track=ctx.track,
                      qp=qp.qp_num, bytes=wqe.length)
            if trc.enabled else NULL_SPAN)
    yield from ctx.compute(HOST_POST_RECV_INSTRUCTIONS)
    yield from ctx.write(qp.rq_slot_addr(producer_index), wqe.encode())
    yield from ctx.write(hca.doorbell_addr(qp),
                         encode_doorbell(producer_index + 1, is_rq=True)
                         .to_bytes(8, "little"))
    span.end()
    return producer_index + 1


def ibv_poll_cq(ctx: HostThread, consumer: CqConsumer):
    """One non-blocking poll: returns a :class:`Cqe` or ``None``."""
    word1 = yield from ctx.read_u64(consumer.slot_addr + 8)
    if not Cqe.is_valid_word(int.from_bytes(word1.to_bytes(8, "little"), "big")):
        return None
    yield from ctx.compute(HOST_POLL_CQ_INSTRUCTIONS)
    raw = yield from ctx.read(consumer.slot_addr, CQE_BYTES)
    cqe = Cqe.decode(raw)
    # Invalidate the slot for ring reuse, advance the consumer.
    yield from ctx.write_u64(consumer.slot_addr + 8, 0)
    consumer.consumer_index += 1
    return cqe


def ibv_wait_cq(ctx: HostThread, consumer: CqConsumer,
                max_polls: int | None = 2_000_000):
    """Spin ``ibv_poll_cq`` until a completion arrives."""
    trc = ctx.sim.tracer
    # Polling layer ("ib.poll"): per-message span volume, filtered out of
    # the telemetry flight recorder by default (see gpu_rma_wait_notification).
    traced = trc.wants("ib.poll")
    span = (trc.begin("ib.poll", "ibv_wait_cq", track=ctx.track)
            if traced else NULL_SPAN)
    polls = 0
    while True:
        cqe = yield from ibv_poll_cq(ctx, consumer)
        if cqe is not None:
            span.end(polls=polls + 1)
            if traced:
                trc.metrics.histogram("ib.cq_polls").observe(polls + 1)
            return cqe
        polls += 1
        if max_polls is not None and polls >= max_polls:
            raise VerbsError(f"CQ wait exceeded {max_polls} polls")
        if polls > 256:  # long wait: progressive backoff
            yield ctx.sim.timeout(min(0.2e-6 * (2 ** ((polls - 256) // 64)), 20e-6))
