"""Completion queues and completion-queue entries.

A CQ is a ring of 32-byte big-endian CQEs in a buffer the *user* allocates —
on host memory or, with the patched drivers of §IV-B, directly in GPU device
memory.  That relocatability is InfiniBand's advantage over EXTOLL's
kernel-pinned notification queues (§VI), and it is why ``dev2dev-bufOnGPU``
polls cheaply.

CQE layout (four big-endian u64 words):

* word 0: wr_id
* word 1: | valid:1 | opcode:8 | status:8 | qp_num:24 |
* word 2: | byte_len:32 | immediate:32 |
* word 3: reserved
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import VerbsError
from ..memory import AddressRange

CQE_BYTES = 32


class WcStatus(enum.IntEnum):
    SUCCESS = 0
    LOCAL_PROTECTION_ERROR = 4
    REMOTE_ACCESS_ERROR = 10


class WcOpcode(enum.IntEnum):
    RDMA_WRITE = 1
    SEND = 3
    RDMA_READ = 4
    RECV = 128
    RECV_RDMA_WITH_IMM = 129


@dataclass(frozen=True)
class Cqe:
    wr_id: int
    opcode: WcOpcode
    status: WcStatus
    qp_num: int
    byte_len: int
    immediate: int = 0

    def encode(self) -> bytes:
        word1 = ((1 << 63)
                 | ((int(self.opcode) & 0xFF) << 40)
                 | ((int(self.status) & 0xFF) << 32)
                 | (self.qp_num & 0xFFFFFF))
        words = [
            self.wr_id,
            word1,
            ((self.byte_len & 0xFFFFFFFF) << 32) | (self.immediate & 0xFFFFFFFF),
            0,
        ]
        return b"".join(w.to_bytes(8, "big") for w in words)

    @classmethod
    def decode(cls, raw: bytes) -> "Cqe":
        if len(raw) != CQE_BYTES:
            raise VerbsError(f"CQE must be {CQE_BYTES} bytes")
        words = [int.from_bytes(raw[i:i + 8], "big") for i in range(0, 32, 8)]
        if not (words[1] >> 63) & 1:
            raise VerbsError("decoding an invalid CQE slot")
        return cls(
            wr_id=words[0],
            opcode=WcOpcode((words[1] >> 40) & 0xFF),
            status=WcStatus((words[1] >> 32) & 0xFF),
            qp_num=words[1] & 0xFFFFFF,
            byte_len=(words[2] >> 32) & 0xFFFFFFFF,
            immediate=words[2] & 0xFFFFFFFF,
        )

    @staticmethod
    def is_valid_word(word1_be: int) -> bool:
        """Check the valid bit given word 1 as read (big-endian u64)."""
        return bool((word1_be >> 63) & 1)


class CompletionQueue:
    """Ring bookkeeping for one CQ.  The buffer itself lives wherever the
    caller allocated it; the HCA DMA-writes CQEs, software polls and frees."""

    _next_num = 0

    def __init__(self, buffer: AddressRange, entries: int, location: str) -> None:
        if entries < 2:
            raise VerbsError("CQ needs at least 2 entries")
        if buffer.size < entries * CQE_BYTES:
            raise VerbsError(
                f"CQ buffer {buffer} too small for {entries} entries")
        if location not in ("host", "gpu"):
            raise VerbsError(f"bad CQ location {location!r}")
        CompletionQueue._next_num += 1
        self.cq_num = CompletionQueue._next_num
        self.buffer = buffer
        self.entries = entries
        self.location = location
        self.producer_index = 0   # hardware-private
        # Counting completions: plain callbacks invoked (no simulated cost)
        # after the HCA lands a CQE in this queue — the hook the triggered-
        # operations layer uses to tick threshold counters off completions.
        # Empty by default: one truthiness check per CQE.
        self.listeners: list = []

    def slot_addr(self, index: int) -> int:
        return self.buffer.base + (index % self.entries) * CQE_BYTES

    def hw_claim_slot(self) -> int:
        """Producer side; the ring is sized so overrun means the consumer is
        hopelessly behind — surface it."""
        addr = self.slot_addr(self.producer_index)
        self.producer_index += 1
        return addr
