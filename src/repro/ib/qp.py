"""Queue pairs (§IV-A).

A QP is two rings — a send queue and a receive queue — plus the completion
queues they report into.  The rings are ordinary memory the user allocates:
host memory normally, GPU device memory with the patched drivers
(``dev2devBufOnGPU``).  Software writes WQEs into the rings and notifies the
HCA through its doorbell register; the HCA fetches WQEs by DMA.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..errors import QpStateError, VerbsError
from ..memory import AddressRange
from .cq import CompletionQueue
from .wqe import WQE_BYTES


class QpState(enum.Enum):
    RESET = "RESET"
    INIT = "INIT"
    RTR = "RTR"    # ready to receive
    RTS = "RTS"    # ready to send


@dataclass
class QueuePair:
    qp_num: int
    sq_buffer: AddressRange
    rq_buffer: AddressRange
    sq_entries: int
    rq_entries: int
    send_cq: CompletionQueue
    recv_cq: CompletionQueue
    location: str                        # where the rings live: "host"/"gpu"
    state: QpState = QpState.RESET
    # Connection (filled when transitioning to RTR/RTS).
    remote_node: Optional[int] = None
    remote_qp_num: Optional[int] = None
    # Hardware-side consumer indices.
    sq_consumer: int = 0
    rq_consumer: int = 0
    # Hardware-visible producer indices (updated by doorbells).
    sq_producer_seen: int = 0
    rq_producer_seen: int = 0
    # RC transport packet-sequence numbers (used when IbConfig.reliability
    # arms go-back-N): requester side stamps next_psn, responder side admits
    # only expected_psn and NACKs gaps.
    next_psn: int = 1
    expected_psn: int = 1

    def __post_init__(self) -> None:
        if self.sq_buffer.size < self.sq_entries * WQE_BYTES:
            raise VerbsError("SQ buffer too small")
        if self.rq_buffer.size < self.rq_entries * WQE_BYTES:
            raise VerbsError("RQ buffer too small")
        if self.location not in ("host", "gpu"):
            raise VerbsError(f"bad QP buffer location {self.location!r}")

    # -- ring math ---------------------------------------------------------------
    def sq_slot_addr(self, index: int) -> int:
        return self.sq_buffer.base + (index % self.sq_entries) * WQE_BYTES

    def rq_slot_addr(self, index: int) -> int:
        return self.rq_buffer.base + (index % self.rq_entries) * WQE_BYTES

    # -- state machine ---------------------------------------------------------------
    def to_init(self) -> None:
        if self.state is not QpState.RESET:
            raise QpStateError(f"QP{self.qp_num}: INIT from {self.state}")
        self.state = QpState.INIT

    def to_rtr(self, remote_node: int, remote_qp_num: int) -> None:
        if self.state is not QpState.INIT:
            raise QpStateError(f"QP{self.qp_num}: RTR from {self.state}")
        self.remote_node = remote_node
        self.remote_qp_num = remote_qp_num
        self.state = QpState.RTR

    def to_rts(self) -> None:
        if self.state is not QpState.RTR:
            raise QpStateError(f"QP{self.qp_num}: RTS from {self.state}")
        self.state = QpState.RTS

    def require_rts(self) -> None:
        if self.state is not QpState.RTS:
            raise QpStateError(
                f"QP{self.qp_num}: send requires RTS, state is {self.state.value}")

    def require_rtr(self) -> None:
        if self.state not in (QpState.RTR, QpState.RTS):
            raise QpStateError(
                f"QP{self.qp_num}: receive requires RTR/RTS, state is "
                f"{self.state.value}")

    @property
    def rq_outstanding(self) -> int:
        """Posted-but-unconsumed receive WQEs."""
        return self.rq_producer_seen - self.rq_consumer
