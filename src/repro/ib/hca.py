"""The InfiniBand HCA: doorbells, WQE fetch/execute, RC transport, CQEs.

The posting contract (§IV-A) is the two-step dance the paper contrasts with
EXTOLL's single BAR burst:

1. software writes a 64-byte big-endian WQE into the send queue ring (host
   or GPU memory),
2. software rings the QP's doorbell register in the HCA BAR.

The HCA then *fetches the WQE by DMA* (an extra PCIe round trip — P2P when
the rings live in GPU memory), executes it, and reports completion by
DMA-writing a CQE into the completion-queue buffer once the remote end
acknowledges.  Reliable-connection semantics: per-QP ordering, in-order
delivery, receive WQEs consumed by SENDs and writes-with-immediate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import RetryExhaustedError, VerbsError
from ..memory import AddressRange, MmioWindow
from ..network import Endpoint, Packet, PacketKind
from ..pcie import DmaConfig, DmaEngine, PcieFabric, PcieLinkConfig, PciePort
from ..sim import NULL_SPAN, Mutex, Simulator, Store
from .config import IbConfig
from .cq import CompletionQueue, Cqe, WcOpcode, WcStatus
from .mr import MemoryRegion, MrTable
from .qp import QueuePair
from .wqe import WQE_BYTES, WQE_FLAG_UNSIGNALED, IbOpcode, Wqe

_RQ_DOORBELL_BIT = 1 << 62


def encode_doorbell(producer_index: int, is_rq: bool = False) -> int:
    """The 64-bit doorbell record software writes to ring a QP."""
    value = producer_index & 0xFFFFFFFF
    if is_rq:
        value |= _RQ_DOORBELL_BIT
    return value


@dataclass(frozen=True)
class _FetchJob:
    qp_num: int
    index: int


class _RetxState:
    """Requester-side go-back-N engine of one QP (reliability mode).

    Tracks every sent-but-unacknowledged request packet by PSN.  A parked
    timer process wakes while anything is outstanding; each fruitless RTO
    (the lowest unacked PSN did not move) replays every tracked packet in
    PSN order with exponential backoff, until acked or the retry budget
    dies.  NACKs from the responder trigger an immediate full replay.
    """

    def __init__(self, hca: "Hca", qp: QueuePair) -> None:
        self.hca = hca
        self.qp = qp
        # psn -> (packet, cqe_info); cqe_info is (wr_id, WcOpcode, length)
        # for operations completed by ACK, None for READs (completed by the
        # response packet instead).
        self.unacked: Dict[int, tuple] = {}
        self.retransmits = 0
        self.timeouts = 0
        self.error: Optional[RetryExhaustedError] = None
        self._kick = None
        hca.sim.process(self._timer_loop(),
                        name=f"{hca.name}.retx-qp{qp.qp_num}")

    def track(self, psn: int, packet: Packet, cqe_info) -> None:
        self.unacked[psn] = (packet, cqe_info)
        if self._kick is not None and not self._kick.triggered:
            self._kick.succeed()

    def pop_through(self, ack_psn: int):
        """Cumulative ack: drop (and return, in PSN order) everything
        tracked at or below ``ack_psn`` — except READs, which stay tracked
        until their *response* arrives (an ack only proves the request
        reached the responder, not that the data made it back)."""
        popped = []
        for psn in sorted(self.unacked):
            if psn > ack_psn:
                break
            if self.unacked[psn][1] is None:
                continue
            popped.append((psn, self.unacked.pop(psn)))
        return popped

    def pop_one(self, psn: int):
        return self.unacked.pop(psn, None)

    def _lowest(self) -> Optional[int]:
        return min(self.unacked) if self.unacked else None

    def _timer_loop(self):
        sim = self.hca.sim
        cfg = self.hca.config
        while True:
            if not self.unacked:
                self._kick = sim.event("ib.retx.kick")
                yield self._kick
                continue
            rto = cfg.retx_timeout
            retries = 0
            while self.unacked:
                lowest = self._lowest()
                yield sim.timeout(rto)
                if not self.unacked:
                    break
                if self._lowest() != lowest:
                    # The window moved on its own: fresh RTO, no replay.
                    rto = cfg.retx_timeout
                    retries = 0
                    continue
                self.timeouts += 1
                retries += 1
                if retries > cfg.retx_max_retries:
                    self.error = RetryExhaustedError(
                        f"{self.hca.name} QP{self.qp.qp_num}: PSN "
                        f"{lowest} unacked after {cfg.retx_max_retries} "
                        f"retries")
                    self.hca.async_errors.append(self.error)
                    return
                yield from self.replay()
                rto = min(rto * cfg.retx_backoff, cfg.retx_max_timeout)

    def replay(self):
        """Re-send every unacked request packet, lowest PSN first."""
        hca = self.hca
        trc = hca.sim.tracer
        for psn in sorted(self.unacked):
            entry = self.unacked.get(psn)
            if entry is None:       # acked while we were re-sending
                continue
            yield hca.sim.timeout(hca.config.ack_overhead)
            packet, _info = entry
            self.retransmits += 1
            if trc.enabled:
                trc.instant("fault", "retransmit",
                            track=f"{hca.name}.retx", qp=self.qp.qp_num,
                            psn=psn, kind=packet.kind.value)
                trc.metrics.counter("faults.retransmits").inc()
            yield from hca.endpoint.send(packet.clone())


class Hca:
    """One InfiniBand adapter in a node."""

    def __init__(self, sim: Simulator, node_id: int, name: str = "",
                 config: Optional[IbConfig] = None) -> None:
        self.sim = sim
        self.node_id = node_id
        self.name = name or f"hca{node_id}"
        self.config = config or IbConfig()
        self.mr_table = MrTable(f"{self.name}.mr")
        self.bar: Optional[MmioWindow] = None
        self.endpoint: Optional[Endpoint] = None
        self._qps: Dict[int, QueuePair] = {}
        self._qp_mutex: Dict[int, Mutex] = {}
        self._next_qp_num = 1
        self._jobs: Optional[Store] = None
        # Stats.
        self.doorbells = 0
        self.wqes_executed = 0
        self.packets_handled = 0
        self.cqes_written = 0
        self.corrupt_dropped = 0
        # Go-back-N state (reliability mode): requester-side retransmission
        # engine per QP, responder-side NACK suppression per QP.
        self._retx: Dict[int, _RetxState] = {}
        self._last_nack: Dict[int, int] = {}
        # Asynchronous errors (bad rkey on an incoming write, RNR, ...) are
        # recorded here — the model's analogue of IB async error events.
        self.async_errors: list = []

    # -- wiring ---------------------------------------------------------------------
    def attach(self, fabric: PcieFabric, bar_base: int, endpoint: Endpoint,
               link_config: Optional[PcieLinkConfig] = None) -> PciePort:
        if self.bar is not None:
            raise VerbsError(f"{self.name} already attached")
        self.bar = MmioWindow(f"{self.name}.bar", bar_base, self.config.bar_size)
        fabric.address_map.add(self.bar)
        pcie_port = fabric.attach(self.name, link_config)
        fabric.claim(pcie_port, self.bar)
        self.endpoint = endpoint
        cfg = self.config
        self.dma = DmaEngine(self.sim, pcie_port, f"{self.name}.dma",
                             DmaConfig(contexts=4))
        self.ctrl_dma = DmaEngine(self.sim, pcie_port, f"{self.name}.ctrl-dma",
                                  DmaConfig(contexts=4))
        self._jobs = Store(self.sim, name=f"{self.name}.jobs")
        self.bar.on_write(cfg.doorbell_offset,
                          cfg.max_qps * cfg.doorbell_stride,
                          self._on_doorbell)
        for i in range(cfg.processing_contexts):
            self.sim.process(self._worker_loop(i), name=f"{self.name}.pe{i}")
        self.sim.process(self._receive_loop(), name=f"{self.name}.rx")
        return pcie_port

    def _require_attached(self) -> None:
        if self.bar is None:
            raise VerbsError(f"{self.name} is not attached to a node")

    # -- resource creation -----------------------------------------------------------
    def register_memory(self, rng: AddressRange) -> MemoryRegion:
        return self.mr_table.register(rng)

    def create_cq(self, buffer: AddressRange, entries: int,
                  location: str) -> CompletionQueue:
        self._require_attached()
        return CompletionQueue(buffer, entries, location)

    def create_qp(self, sq_buffer: AddressRange, rq_buffer: AddressRange,
                  send_cq: CompletionQueue, recv_cq: CompletionQueue,
                  location: str) -> QueuePair:
        self._require_attached()
        if len(self._qps) >= self.config.max_qps:
            raise VerbsError(f"{self.name}: QP limit reached")
        qp = QueuePair(
            qp_num=self._next_qp_num,
            sq_buffer=sq_buffer, rq_buffer=rq_buffer,
            sq_entries=self.config.sq_entries,
            rq_entries=self.config.rq_entries,
            send_cq=send_cq, recv_cq=recv_cq, location=location,
        )
        self._next_qp_num += 1
        self._qps[qp.qp_num] = qp
        self._qp_mutex[qp.qp_num] = Mutex(self.sim, f"qp{qp.qp_num}")
        return qp

    def qp(self, qp_num: int) -> QueuePair:
        try:
            return self._qps[qp_num]
        except KeyError:
            raise VerbsError(f"{self.name}: unknown QP {qp_num}") from None

    def _retx_state(self, qp: QueuePair) -> _RetxState:
        state = self._retx.get(qp.qp_num)
        if state is None:
            state = self._retx[qp.qp_num] = _RetxState(self, qp)
        return state

    @property
    def retransmits(self) -> int:
        return sum(s.retransmits for s in self._retx.values())

    def doorbell_addr(self, qp: QueuePair) -> int:
        self._require_attached()
        return (self.bar.range.base + self.config.doorbell_offset
                + qp.qp_num * self.config.doorbell_stride)

    # -- doorbells ---------------------------------------------------------------------
    def _on_doorbell(self, rel_off: int, data: bytes) -> None:
        qp_num = rel_off // self.config.doorbell_stride
        qp = self.qp(qp_num)
        value = int.from_bytes(data[:8], "little")
        index = value & 0xFFFFFFFF
        self.doorbells += 1
        trc = self.sim.tracer
        if trc.enabled:
            trc.instant("ib", "doorbell", track=f"{self.name}.db",
                        qp=qp_num, index=index,
                        rq=bool(value & _RQ_DOORBELL_BIT))
            trc.metrics.counter("ib.doorbells").inc()
        if value & _RQ_DOORBELL_BIT:
            qp.rq_producer_seen = max(qp.rq_producer_seen, index)
            return
        # New send WQEs: schedule a fetch job per fresh producer slot.
        while qp.sq_producer_seen < index:
            self._jobs.put(_FetchJob(qp_num, qp.sq_producer_seen))
            qp.sq_producer_seen += 1

    # -- WQE execution -------------------------------------------------------------------
    def _worker_loop(self, worker: int):
        cfg = self.config
        track = f"{self.name}.pe{worker}"
        while True:
            job = yield self._jobs.get()
            qp = self.qp(job.qp_num)
            mutex = self._qp_mutex[job.qp_num]
            yield mutex.acquire()  # RC: per-QP ordering
            trc = self.sim.tracer
            span = (trc.begin("ib", "wqe-exec", track=track,
                              qp=job.qp_num, index=job.index)
                    if trc.enabled else NULL_SPAN)
            try:
                qp.require_rts()
                yield self.sim.timeout(cfg.doorbell_to_fetch)
                raw = yield from self.ctrl_dma.read(qp.sq_slot_addr(job.index),
                                                    WQE_BYTES)
                wqe = Wqe.decode(raw)
                span.set(opcode=wqe.opcode.name, bytes=wqe.length)
                yield self.sim.timeout(cfg.wqe_execute_overhead)
                yield from self._execute_send_wqe(qp, wqe)
                qp.sq_consumer += 1
                self.wqes_executed += 1
                if trc.enabled:
                    trc.metrics.counter("ib.wqes_executed").inc()
            finally:
                span.end()
                mutex.release()

    @staticmethod
    def _causal_addr(dst_node: int, meta: dict):
        """Causal address key of one request packet — (destination node,
        target address).  RDMA writes land at an explicit remote address;
        SENDs are consumed in order by the destination QP, so the QP number
        is the shared key both ends can compute."""
        opcode = IbOpcode(meta["opcode"])
        if opcode in (IbOpcode.RDMA_WRITE, IbOpcode.RDMA_WRITE_WITH_IMM):
            return (dst_node, meta["remote_addr"])
        return (dst_node, ("qp", meta["dst_qp"]))

    def _execute_send_wqe(self, qp: QueuePair, wqe: Wqe):
        cfg = self.config
        self.mr_table.validate_local(wqe.lkey, wqe.local_addr, wqe.length)
        meta = {
            "dst_qp": qp.remote_qp_num, "src_qp": qp.qp_num,
            "wr_id": wqe.wr_id, "opcode": int(wqe.opcode),
            "remote_addr": wqe.remote_addr, "rkey": wqe.rkey,
            "immediate": wqe.immediate, "length": wqe.length,
            "local_addr": wqe.local_addr, "lkey": wqe.lkey,
        }
        if cfg.reliability:
            meta["psn"] = qp.next_psn
            qp.next_psn += 1
        unsignaled = bool(wqe.flags & WQE_FLAG_UNSIGNALED)
        if unsignaled:
            meta["unsignaled"] = True
        if wqe.opcode in (IbOpcode.RDMA_WRITE, IbOpcode.RDMA_WRITE_WITH_IMM):
            payload = yield from self.dma.read(wqe.local_addr, wqe.length)
            packet = Packet(
                PacketKind.IB_RDMA_WRITE, self.node_id, qp.remote_node,
                cfg.packet_header_bytes, payload, meta)
            cqe_info = (None if unsignaled
                        else (wqe.wr_id, WcOpcode.RDMA_WRITE, wqe.length))
        elif wqe.opcode is IbOpcode.SEND:
            payload = yield from self.dma.read(wqe.local_addr, wqe.length)
            packet = Packet(
                PacketKind.IB_SEND, self.node_id, qp.remote_node,
                cfg.packet_header_bytes, payload, meta)
            cqe_info = (None if unsignaled
                        else (wqe.wr_id, WcOpcode.SEND, wqe.length))
        elif wqe.opcode is IbOpcode.RDMA_READ:
            packet = Packet(
                PacketKind.IB_RDMA_READ_REQ, self.node_id, qp.remote_node,
                cfg.packet_header_bytes, b"", meta)
            cqe_info = None     # READs complete on the response, not an ACK
        else:
            raise VerbsError(f"cannot execute {wqe.opcode} from the send queue")
        trc = self.sim.tracer
        causal = (trc.wants("causal")
                  and wqe.opcode is not IbOpcode.RDMA_READ)
        if causal:
            addr = self._causal_addr(qp.remote_node, meta)
            trc.flow_event("txr", f"{self.name}.rma", addr=addr,
                           bytes=wqe.length)
        if cfg.reliability:
            self._retx_state(qp).track(meta["psn"], packet, cqe_info)
        yield from self.endpoint.send(packet)
        if causal:
            trc.flow_event("txd", f"{self.name}.rma", addr=addr)

    # -- receive path ---------------------------------------------------------------------
    def _receive_loop(self):
        while True:
            packet = yield self.endpoint.recv()
            self.packets_handled += 1
            if packet.is_corrupt:
                # Link-level ICRC failure: the packet never existed as far
                # as the transport is concerned; go-back-N replays it.
                self.corrupt_dropped += 1
                trc = self.sim.tracer
                if trc.enabled:
                    trc.instant("fault", "drop:crc", track=f"{self.name}.rx",
                                seq=packet.seq, kind=packet.kind.value)
                    trc.metrics.counter(f"ib.{self.name}.crc_drops").inc()
                continue
            self.sim.process(self._handle_packet_guarded(packet),
                             name=f"{self.name}.pkt{packet.seq}")

    def _handle_packet_guarded(self, packet: Packet):
        try:
            yield from self._handle_packet(packet)
        except Exception as exc:
            self.async_errors.append(exc)

    def _handle_packet(self, packet: Packet):
        kind = packet.kind
        if kind in (PacketKind.IB_RDMA_WRITE, PacketKind.IB_SEND,
                    PacketKind.IB_RDMA_READ_REQ):
            admitted = yield from self._admit_request(packet)
            if not admitted:
                return
        if kind is PacketKind.IB_RDMA_WRITE:
            yield from self._rx_rdma_write(packet)
        elif kind is PacketKind.IB_SEND:
            yield from self._rx_send(packet)
        elif kind is PacketKind.IB_RDMA_READ_REQ:
            yield from self._rx_read_request(packet)
        elif kind is PacketKind.IB_RDMA_READ_RSP:
            yield from self._rx_read_response(packet)
        elif kind is PacketKind.IB_ACK:
            yield from self._rx_ack(packet)
        else:
            raise VerbsError(f"{self.name} received foreign packet {packet!r}")

    def _admit_request(self, packet: Packet):
        """Responder-side go-back-N admission.  Returns True to process the
        request; duplicates are re-ACKed (or, for READ requests, re-executed
        — their response may have been the lost packet) and gaps are NACKed
        so the requester replays without waiting out its RTO."""
        meta = packet.meta
        psn = meta.get("psn")
        if not self.config.reliability or psn is None:
            return True
        qp = self.qp(meta["dst_qp"])
        if psn == qp.expected_psn:
            qp.expected_psn += 1
            self._last_nack.pop(qp.qp_num, None)
            return True
        if psn < qp.expected_psn:
            if packet.kind is PacketKind.IB_RDMA_READ_REQ:
                return True     # re-execute: the lost packet was the response
            # Data already landed — the ACK must have been lost.  Re-ACK
            # cumulatively so the requester's window advances.
            yield self.sim.timeout(self.config.ack_overhead)
            yield from self.endpoint.send(Packet(
                PacketKind.IB_ACK, self.node_id, packet.src_node,
                self.config.packet_header_bytes, b"",
                {"src_qp": meta["src_qp"], "ack_psn": qp.expected_psn - 1}))
            return False
        # Gap: drop, and NACK the missing PSN (once per gap — later packets
        # of the same burst stay silent so one loss causes one replay).
        if self._last_nack.get(qp.qp_num) != qp.expected_psn:
            self._last_nack[qp.qp_num] = qp.expected_psn
            trc = self.sim.tracer
            if trc.enabled:
                trc.instant("fault", "nack", track=f"{self.name}.rx",
                            qp=qp.qp_num, expected=qp.expected_psn, got=psn)
                trc.metrics.counter(f"ib.{self.name}.nacks").inc()
            yield self.sim.timeout(self.config.ack_overhead)
            yield from self.endpoint.send(Packet(
                PacketKind.IB_ACK, self.node_id, packet.src_node,
                self.config.packet_header_bytes, b"",
                {"src_qp": meta["src_qp"], "ack_psn": qp.expected_psn - 1,
                 "nack_psn": qp.expected_psn}))
        return False

    def _rx_rdma_write(self, packet: Packet):
        meta = packet.meta
        qp = self.qp(meta["dst_qp"])
        qp.require_rtr()
        trc = self.sim.tracer
        causal = trc.wants("causal")
        if causal:
            addr = self._causal_addr(self.node_id, meta)
            trc.flow_event("rxs", f"{self.name}.rma", addr=addr)
        self.mr_table.validate_remote(meta["rkey"], meta["remote_addr"],
                                      len(packet.payload))
        yield from self.dma.write(meta["remote_addr"], packet.payload)
        if causal:
            trc.flow_event("dlv", f"{self.name}.rma", addr=addr,
                           bytes=len(packet.payload))
        if IbOpcode(meta["opcode"]) is IbOpcode.RDMA_WRITE_WITH_IMM:
            # Consumes a receive WQE; its address may be zero/ignored (§IV-A).
            yield from self._consume_rq_entry(qp, fetch=False)
            yield from self._write_cqe(qp.recv_cq, Cqe(
                wr_id=0, opcode=WcOpcode.RECV_RDMA_WITH_IMM,
                status=WcStatus.SUCCESS, qp_num=qp.qp_num,
                byte_len=len(packet.payload), immediate=meta["immediate"]))
        yield from self._send_ack(packet, WcOpcode.RDMA_WRITE)

    def _rx_send(self, packet: Packet):
        meta = packet.meta
        qp = self.qp(meta["dst_qp"])
        qp.require_rtr()
        trc = self.sim.tracer
        causal = trc.wants("causal")
        if causal:
            addr = self._causal_addr(self.node_id, meta)
            trc.flow_event("rxs", f"{self.name}.rma", addr=addr)
        rq_wqe = yield from self._consume_rq_entry(qp, fetch=True)
        if rq_wqe.length < len(packet.payload):
            raise VerbsError(
                f"QP{qp.qp_num}: receive buffer ({rq_wqe.length}B) smaller "
                f"than SEND payload ({len(packet.payload)}B)")
        self.mr_table.validate_local(rq_wqe.lkey, rq_wqe.local_addr,
                                     len(packet.payload))
        yield from self.dma.write(rq_wqe.local_addr, packet.payload)
        if causal:
            trc.flow_event("dlv", f"{self.name}.rma", addr=addr,
                           bytes=len(packet.payload))
        yield from self._write_cqe(qp.recv_cq, Cqe(
            wr_id=rq_wqe.wr_id, opcode=WcOpcode.RECV,
            status=WcStatus.SUCCESS, qp_num=qp.qp_num,
            byte_len=len(packet.payload)))
        yield from self._send_ack(packet, WcOpcode.SEND)

    def _consume_rq_entry(self, qp: QueuePair, fetch: bool):
        """Pop the next posted receive WQE.  'If a send request is submitted
        without a matching receive request on the remote side, the
        communication fails' (§IV-A)."""
        if qp.rq_outstanding <= 0:
            raise VerbsError(
                f"QP{qp.qp_num}: receiver-not-ready — no receive WQE posted")
        index = qp.rq_consumer
        qp.rq_consumer += 1
        if not fetch:
            return None
        raw = yield from self.ctrl_dma.read(qp.rq_slot_addr(index), WQE_BYTES)
        return Wqe.decode(raw)

    def _rx_read_request(self, packet: Packet):
        meta = packet.meta
        qp = self.qp(meta["dst_qp"])
        qp.require_rtr()
        self.mr_table.validate_remote(meta["rkey"], meta["remote_addr"],
                                      meta["length"])
        data = yield from self.dma.read(meta["remote_addr"], meta["length"])
        yield from self.endpoint.send(Packet(
            PacketKind.IB_RDMA_READ_RSP, self.node_id, packet.src_node,
            self.config.packet_header_bytes, data, dict(meta)))

    def _rx_read_response(self, packet: Packet):
        meta = packet.meta
        qp = self.qp(meta["src_qp"])  # back at the origin
        if self.config.reliability and "psn" in meta:
            state = self._retx.get(qp.qp_num)
            # A response can arrive twice (replayed request whose first
            # response survived after all); only the first completes.
            if state is None or state.pop_one(meta["psn"]) is None:
                return
        yield from self.dma.write(meta["local_addr"], packet.payload)
        yield from self._write_cqe(qp.send_cq, Cqe(
            wr_id=meta["wr_id"], opcode=WcOpcode.RDMA_READ,
            status=WcStatus.SUCCESS, qp_num=qp.qp_num,
            byte_len=len(packet.payload)))

    def _send_ack(self, packet: Packet, op: WcOpcode):
        yield self.sim.timeout(self.config.ack_overhead)
        meta = {"src_qp": packet.meta["src_qp"],
                "wr_id": packet.meta["wr_id"],
                "opcode": int(op), "length": packet.meta["length"]}
        if packet.meta.get("unsignaled"):
            meta["unsignaled"] = True
        if self.config.reliability and "psn" in packet.meta:
            # Cumulative: everything below expected_psn has been admitted.
            meta["ack_psn"] = self.qp(packet.meta["dst_qp"]).expected_psn - 1
        yield from self.endpoint.send(Packet(
            PacketKind.IB_ACK, self.node_id, packet.src_node,
            self.config.packet_header_bytes, b"", meta))

    def _rx_ack(self, packet: Packet):
        meta = packet.meta
        qp = self.qp(meta["src_qp"])
        if self.config.reliability and "ack_psn" in meta:
            state = self._retx.get(qp.qp_num)
            if state is None:
                return
            # Cumulative ack: complete every newly-covered operation in PSN
            # order (READs complete via their response packet instead).
            for _psn, (_pkt, cqe_info) in state.pop_through(meta["ack_psn"]):
                if cqe_info is None:
                    continue
                wr_id, opcode, length = cqe_info
                yield from self._write_cqe(qp.send_cq, Cqe(
                    wr_id=wr_id, opcode=opcode, status=WcStatus.SUCCESS,
                    qp_num=qp.qp_num, byte_len=length))
            if "nack_psn" in meta and state.unacked:
                yield from state.replay()
            return
        if meta.get("unsignaled"):
            return
        yield from self._write_cqe(qp.send_cq, Cqe(
            wr_id=meta["wr_id"], opcode=WcOpcode(meta["opcode"]),
            status=WcStatus.SUCCESS, qp_num=qp.qp_num,
            byte_len=meta["length"]))

    # -- CQEs --------------------------------------------------------------------------
    def _write_cqe(self, cq: CompletionQueue, cqe: Cqe):
        slot = cq.hw_claim_slot()
        yield from self.ctrl_dma.write(slot, cqe.encode())
        self.cqes_written += 1
        if cq.listeners:
            for listener in cq.listeners:
                listener(cqe)
        trc = self.sim.tracer
        if trc.enabled:
            trc.instant("ib", f"cqe:{cqe.opcode.name}", track=f"{self.name}.cq",
                        qp=cqe.qp_num, wr_id=cqe.wr_id, bytes=cqe.byte_len)
            trc.metrics.counter("ib.cqes_written").inc()
