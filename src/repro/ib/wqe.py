"""Work-queue entries — 64-byte big-endian descriptors.

InfiniBand hardware consumes **big-endian** control structures; on the
little-endian hosts/GPUs of the testbed every address, key, and length field
must be byte-swapped while building the WQE.  The paper measures this
conversion as a major part of the 442 instructions of ``ibv_post_send``
(§V-B3) and notes the optimization of statically pre-converting constant
fields — both are modeled by the instruction-cost constants below, which the
GPU/CPU posting code charges while assembling descriptors.

Layout (eight big-endian u64 words):

* word 0: | opcode:8 | flags:8 | reserved:16 | byte_len:32 |
* word 1: wr_id
* word 2: local address          * word 3: | lkey:32 | reserved:32 |
* word 4: remote address         * word 5: | rkey:32 | immediate:32 |
* words 6-7: reserved ("stamped" when the slot is reused)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import VerbsError

WQE_BYTES = 64

#: Flag bit: suppress the send CQE for this WQE (the inverse of verbs'
#: ``IBV_SEND_SIGNALED`` default-off convention — the model keeps every
#: WQE signaled unless asked, so existing drivers are unaffected).  The
#: offload engine signals only the last WQE of each batch; RC ordering
#: means that CQE confirms every earlier WQE on the QP.
WQE_FLAG_UNSIGNALED = 0x1

# Instruction-cost model for assembling/parsing control structures (counts
# charged by posting/polling code; calibrated so a GPU ibv_post_send lands at
# ~442 instructions and ibv_poll_cq at ~283, §V-B3).
ENDIAN_SWAP_COST = 14          # byteswap + shifts/or per 64-bit field
DYNAMIC_FIELDS = 5             # addr, rkey-word, len-word, wr_id, lkey-word
WQE_BUILD_BASE_COST = 300      # bounds/state checks, ring math, segment setup
WQE_STAMP_COST = 48            # stamping old queue elements for the prefetcher
DOORBELL_BUILD_COST = 24       # assemble the doorbell record
CQE_PARSE_BASE_COST = 96       # validity check, status decode, counter math
CQ_QP_LOOKUP_COST = 60         # picking the QP out of the QP list (§V-B3)
CQE_CONSUME_COST = 40          # consumer-index update bookkeeping


class IbOpcode(enum.IntEnum):
    RDMA_WRITE = 1
    RDMA_WRITE_WITH_IMM = 2
    SEND = 3
    RDMA_READ = 4
    RECV = 5  # RQ-side pseudo-opcode


@dataclass(frozen=True)
class Wqe:
    opcode: IbOpcode
    wr_id: int
    local_addr: int
    lkey: int
    length: int
    remote_addr: int = 0
    rkey: int = 0
    immediate: int = 0
    flags: int = 0

    def __post_init__(self) -> None:
        if self.length <= 0 or self.length >= 1 << 32:
            raise VerbsError(f"WQE length out of range: {self.length}")
        for name in ("lkey", "rkey", "immediate"):
            if not 0 <= getattr(self, name) < 1 << 32:
                raise VerbsError(f"WQE {name} out of range")

    def encode(self) -> bytes:
        words = [
            ((int(self.opcode) & 0xFF) << 56) | ((self.flags & 0xFF) << 48)
            | (self.length & 0xFFFFFFFF),
            self.wr_id,
            self.local_addr,
            (self.lkey & 0xFFFFFFFF) << 32,
            self.remote_addr,
            ((self.rkey & 0xFFFFFFFF) << 32) | (self.immediate & 0xFFFFFFFF),
            0,
            0,
        ]
        return b"".join(w.to_bytes(8, "big") for w in words)

    @classmethod
    def decode(cls, raw: bytes) -> "Wqe":
        if len(raw) != WQE_BYTES:
            raise VerbsError(f"WQE must be {WQE_BYTES} bytes, got {len(raw)}")
        words = [int.from_bytes(raw[i:i + 8], "big") for i in range(0, 64, 8)]
        op_val = (words[0] >> 56) & 0xFF
        try:
            opcode = IbOpcode(op_val)
        except ValueError:
            raise VerbsError(f"bad WQE opcode {op_val}") from None
        return cls(
            opcode=opcode,
            flags=(words[0] >> 48) & 0xFF,
            length=words[0] & 0xFFFFFFFF,
            wr_id=words[1],
            local_addr=words[2],
            lkey=(words[3] >> 32) & 0xFFFFFFFF,
            remote_addr=words[4],
            rkey=(words[5] >> 32) & 0xFFFFFFFF,
            immediate=words[5] & 0xFFFFFFFF,
        )


def post_send_instruction_cost() -> int:
    """Total instruction count of assembling and posting one send WQE —
    the ~442 instructions the paper measures for ``ibv_post_send``."""
    return (WQE_BUILD_BASE_COST
            + DYNAMIC_FIELDS * ENDIAN_SWAP_COST
            + WQE_STAMP_COST
            + DOORBELL_BUILD_COST)


def post_send_instruction_cost_static_optimized() -> int:
    """The paper's GPU optimization: constant fields pre-converted, only
    source/destination address and size swapped per request (§V-B3)."""
    return (WQE_BUILD_BASE_COST
            + 3 * ENDIAN_SWAP_COST
            + WQE_STAMP_COST
            + DOORBELL_BUILD_COST)


def poll_cq_instruction_cost() -> int:
    """Instruction count of one *successful* ``ibv_poll_cq`` — the ~283
    instructions the paper measures, including the QP-list lookup."""
    return (CQE_PARSE_BASE_COST
            + ENDIAN_SWAP_COST * 3
            + CQ_QP_LOOKUP_COST
            + CQE_CONSUME_COST
            + WQE_STAMP_COST - 3)
