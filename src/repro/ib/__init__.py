"""InfiniBand model: WQEs, MRs, QPs, CQs, the HCA, and host Verbs."""

from .config import IbConfig
from .cq import CQE_BYTES, CompletionQueue, Cqe, WcOpcode, WcStatus
from .hca import Hca, encode_doorbell
from .mr import MemoryRegion, MrTable
from .qp import QpState, QueuePair
from .verbs import (
    CqConsumer,
    HOST_POLL_CQ_INSTRUCTIONS,
    HOST_POST_SEND_INSTRUCTIONS,
    IbResources,
    connect_qps,
    ibv_poll_cq,
    ibv_post_recv,
    ibv_post_send,
    ibv_wait_cq,
)
from .wqe import (
    WQE_BYTES,
    WQE_FLAG_UNSIGNALED,
    IbOpcode,
    Wqe,
    poll_cq_instruction_cost,
    post_send_instruction_cost,
    post_send_instruction_cost_static_optimized,
)

__all__ = [
    "IbConfig",
    "CompletionQueue",
    "Cqe",
    "CQE_BYTES",
    "WcOpcode",
    "WcStatus",
    "Hca",
    "encode_doorbell",
    "MemoryRegion",
    "MrTable",
    "QpState",
    "QueuePair",
    "CqConsumer",
    "IbResources",
    "connect_qps",
    "ibv_poll_cq",
    "ibv_post_recv",
    "ibv_post_send",
    "ibv_wait_cq",
    "HOST_POLL_CQ_INSTRUCTIONS",
    "HOST_POST_SEND_INSTRUCTIONS",
    "IbOpcode",
    "Wqe",
    "WQE_BYTES",
    "WQE_FLAG_UNSIGNALED",
    "poll_cq_instruction_cost",
    "post_send_instruction_cost",
    "post_send_instruction_cost_static_optimized",
]
