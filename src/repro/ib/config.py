"""InfiniBand HCA parameters (Mellanox 4X FDR era, §V)."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError
from ..network import NetLinkConfig
from ..units import GB_PER_S, KIB, NS


@dataclass(frozen=True)
class IbConfig:
    name: str = "connectx-fdr"
    # 4X FDR: 54.54 Gb/s signalling, ~6.8 GB/s payload after 64/66 encoding.
    # GPU<->GPU traffic is capped well below this by the PCIe P2P path.
    link: NetLinkConfig = field(default_factory=lambda: NetLinkConfig(
        bandwidth=6.0 * GB_PER_S, latency=450 * NS))

    # Wire/queue formats.
    wqe_bytes: int = 64
    cqe_bytes: int = 32
    packet_header_bytes: int = 58      # LRH+BTH+RETH+ICRC era framing

    # HCA pipeline.
    processing_contexts: int = 4       # concurrent WQE executions
    doorbell_to_fetch: float = 150 * NS   # doorbell decode + scheduling
    wqe_execute_overhead: float = 200 * NS
    ack_overhead: float = 120 * NS

    # BAR layout.
    bar_size: int = 64 * KIB
    doorbell_offset: int = 0x0
    doorbell_stride: int = 8           # one u64 doorbell record per ring

    # Limits.
    max_qps: int = 256
    sq_entries: int = 128
    rq_entries: int = 128
    cq_entries: int = 256

    # Go-back-N retransmission (the RC transport's reliability engine,
    # exercised by repro.faults).  Off by default: the seed fabric is
    # lossless and the default path must stay bit-identical.
    reliability: bool = False
    retx_timeout: float = 30_000 * NS    # initial RTO
    retx_backoff: float = 2.0            # RTO multiplier per fruitless timeout
    retx_max_timeout: float = 2_000_000 * NS
    retx_max_retries: int = 16

    def __post_init__(self) -> None:
        if self.wqe_bytes != 64:
            raise ConfigError("WQE format fixed at 64 bytes")
        if self.cqe_bytes != 32:
            raise ConfigError("CQE format fixed at 32 bytes")
        if self.processing_contexts < 1:
            raise ConfigError("need at least one processing context")
        for attr in ("doorbell_to_fetch", "wqe_execute_overhead", "ack_overhead"):
            if getattr(self, attr) < 0:
                raise ConfigError(f"{attr} must be non-negative")
        if min(self.max_qps, self.sq_entries, self.rq_entries,
               self.cq_entries) < 1:
            raise ConfigError("queue limits must be positive")
        if self.retx_timeout <= 0 or self.retx_max_timeout < self.retx_timeout:
            raise ConfigError("need 0 < retx_timeout <= retx_max_timeout")
        if self.retx_backoff < 1.0 or self.retx_max_retries < 1:
            raise ConfigError("need retx_backoff >= 1 and retx_max_retries >= 1")
