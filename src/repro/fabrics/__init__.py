"""Scale-out fabrics: hierarchical topologies, credit-based congestion,
adaptive routing, and topology-aware collectives at N=64-512.

The paper's testbed is two nodes; this package grows the point-to-point
:mod:`repro.network` layer into service-scale fabrics so the collectives
and MPI layers can show where the PR 2 ring all-reduce breaks and
tree / recursive-halving schedules win:

* :mod:`~repro.fabrics.topology` — deterministic k-ary fat-tree,
  dragonfly, and 2D/3D torus builders emitting node/switch graphs,
* :mod:`~repro.fabrics.routing` — per-packet routing policies
  (dimension-order, up/down, minimal + Valiant/UGAL adaptive) on a
  :class:`~repro.network.RouterEndpoint` subclass,
* :mod:`~repro.fabrics.collective` — packet-level ring / binomial-tree /
  recursive-halving all-reduce schedules over :class:`FabricHost`s,
* :mod:`~repro.fabrics.traffic` — permutation traffic for deadlock and
  congestion canaries,
* :mod:`~repro.fabrics.sweep` — the ``python -m repro fabrics`` sweep
  producing crossover tables and acceptance verdicts.
"""

from .topology import (FabricConfig, Topology, build_topology, dragonfly,
                       fat_tree, torus)
from .routing import FabricInstance, PolicyRouter, instantiate
from .collective import ALGORITHMS, FabricHost, run_collective
from .traffic import run_permutation

__all__ = [
    "ALGORITHMS",
    "FabricConfig",
    "FabricHost",
    "FabricInstance",
    "PolicyRouter",
    "Topology",
    "build_topology",
    "dragonfly",
    "fat_tree",
    "instantiate",
    "run_collective",
    "run_permutation",
    "torus",
]
