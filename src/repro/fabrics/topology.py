"""Deterministic hierarchical topology builders.

Each builder derives a canonical shape from ``(kind, N)`` alone — the same
inputs always produce the same node ids, the same edge list in the same
order, and therefore (downstream) the same simulated schedule.  Host ids
are ``0..N-1``; switch ids start at ``N``.

Link classes carry different physical parameters (a core/global hop is
longer than an edge hop) and — via :attr:`NetLinkConfig.forward_time` —
different store-and-forward relay costs, which is exactly why the old
module-level ``FORWARD_TIME`` constant became a per-link config field.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..errors import NetworkError
from ..network.link import FORWARD_TIME, NetLinkConfig
from ..units import GB_PER_S, NS


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


def _mix(*vals: int) -> int:
    """Deterministic integer hash (splitmix-style) for routing tie-breaks;
    ``hash()`` is salted per interpreter run and must never be used."""
    h = 0x9E3779B97F4A7C15
    for v in vals:
        h ^= (v + 0x9E3779B97F4A7C15 + ((h << 6) & 0xFFFFFFFFFFFFFFFF)
              + (h >> 2)) & 0xFFFFFFFFFFFFFFFF
        h = (h * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        h ^= h >> 31
    return h


@dataclass(frozen=True)
class FabricConfig:
    """Physical parameters of one fabric instantiation."""

    bandwidth: float = 5.0 * GB_PER_S
    edge_latency: float = 550 * NS      # host <-> leaf switch
    local_latency: float = 550 * NS     # intra-pod / intra-group / torus
    global_latency: float = 1100 * NS   # core / inter-group long links
    edge_forward: float = FORWARD_TIME          # leaf-class relay cost
    core_forward: float = 1.5 * FORWARD_TIME    # core/global-class relay
    #: Receive-buffer credits per VC per link direction; ``None`` keeps
    #: the infinite-buffer fabric (bit-identical to no flow control).
    credits: Optional[int] = None
    #: Virtual channels: 2 covers the torus dateline scheme, 3 covers
    #: dragonfly Valiant (one bump per global hop).
    vcs: int = 3

    def link_config(self, cls: str) -> NetLinkConfig:
        if cls == "edge":
            latency, fwd = self.edge_latency, self.edge_forward
        elif cls in ("local", "torus"):
            latency, fwd = self.local_latency, self.edge_forward
        elif cls == "global":
            latency, fwd = self.global_latency, self.core_forward
        else:
            raise NetworkError(f"unknown link class {cls!r}")
        return NetLinkConfig(bandwidth=self.bandwidth, latency=latency,
                             forward_time=fwd, credits=self.credits,
                             vcs=self.vcs)

    def without_flow(self) -> "FabricConfig":
        return replace(self, credits=None)


@dataclass(frozen=True)
class Edge:
    a: int
    b: int
    cls: str        # "edge" | "local" | "global" | "torus"


@dataclass
class Topology:
    """A node/switch graph plus the metadata its routing policy needs."""

    kind: str
    n: int                          # hosts, ids 0..n-1
    params: Dict[str, int]
    switches: List[int] = field(default_factory=list)
    edges: List[Edge] = field(default_factory=list)
    #: host id -> the switch it attaches through (hosts ARE the routers
    #: on a torus, so there it maps to the host itself).
    attach: Dict[int, int] = field(default_factory=dict)

    @property
    def num_switches(self) -> int:
        return len(self.switches)

    @property
    def num_links(self) -> int:
        return len(self.edges)

    def describe(self) -> str:
        p = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return (f"{self.kind}(N={self.n}, {p}; {self.num_switches} "
                f"switches, {self.num_links} links)")


@dataclass
class FatTreeTopology(Topology):
    # pods p x leaves l x hosts-per-leaf h; agg switches per pod; core
    # switches grouped per agg index (agg j of every pod meets group j).
    pods: int = 0
    leaves_per_pod: int = 0
    hosts_per_leaf: int = 0
    aggs_per_pod: int = 0
    cores_per_group: int = 0

    def leaf_id(self, pod: int, leaf: int) -> int:
        return self.n + pod * self.leaves_per_pod + leaf

    def agg_id(self, pod: int, agg: int) -> int:
        return (self.n + self.pods * self.leaves_per_pod
                + pod * self.aggs_per_pod + agg)

    def core_id(self, group: int, k: int) -> int:
        return (self.n + self.pods * self.leaves_per_pod
                + self.pods * self.aggs_per_pod
                + group * self.cores_per_group + k)

    def host_pod(self, host: int) -> int:
        return host // (self.leaves_per_pod * self.hosts_per_leaf)

    def host_leaf(self, host: int) -> int:
        return self.leaf_id(self.host_pod(host),
                            (host // self.hosts_per_leaf)
                            % self.leaves_per_pod)


@dataclass
class DragonflyTopology(Topology):
    groups: int = 0
    routers_per_group: int = 0      # "a" in the canonical parameterization
    hosts_per_router: int = 0       # "p"
    #: (group i, group j) -> switch id in group i owning the global link.
    global_owner: Dict[Tuple[int, int], int] = field(default_factory=dict)

    def switch_id(self, group: int, router: int) -> int:
        return self.n + group * self.routers_per_group + router

    def switch_group(self, switch: int) -> int:
        return (switch - self.n) // self.routers_per_group

    def host_switch(self, host: int) -> int:
        return self.n + host // self.hosts_per_router

    def host_group(self, host: int) -> int:
        return host // (self.routers_per_group * self.hosts_per_router)


@dataclass
class TorusTopology(Topology):
    dims: Tuple[int, ...] = ()

    def coords(self, node: int) -> Tuple[int, ...]:
        out = []
        for size in reversed(self.dims):
            out.append(node % size)
            node //= size
        return tuple(reversed(out))

    def node_at(self, coords: Tuple[int, ...]) -> int:
        node = 0
        for c, size in zip(coords, self.dims):
            node = node * size + c
        return node


# -- builders ------------------------------------------------------------------------
def fat_tree(n: int) -> FatTreeTopology:
    """Three-level Clos: pods of (leaf, agg) layers under core groups.

    The shape is derived canonically from N: hosts-per-leaf is the
    smallest power of two >= cbrt(N), then leaves-per-pod and pods split
    the rest — N must be a power of two >= 8.
    """
    if n < 8 or not _is_pow2(n):
        raise NetworkError(f"fat-tree needs a power-of-two N >= 8, got {n}")
    h = 1
    while h * h * h < n:
        h *= 2
    m = n // h                      # leaves total = l * p
    l = 1
    while l * l < m:
        l *= 2
    p = m // l
    if p * l * h != n:
        raise NetworkError(f"fat-tree cannot factor N={n}")  # pragma: no cover
    aggs = max(2, l // 2)
    cpg = max(2, p // 2)
    topo = FatTreeTopology(kind="fat-tree", n=n,
                           params={"pods": p, "leaves_per_pod": l,
                                   "hosts_per_leaf": h, "aggs_per_pod": aggs,
                                   "cores_per_group": cpg},
                           pods=p, leaves_per_pod=l, hosts_per_leaf=h,
                           aggs_per_pod=aggs, cores_per_group=cpg)
    for pod in range(p):
        for leaf in range(l):
            lid = topo.leaf_id(pod, leaf)
            topo.switches.append(lid)
            for k in range(h):
                host = (pod * l + leaf) * h + k
                topo.edges.append(Edge(host, lid, "edge"))
                topo.attach[host] = lid
    for pod in range(p):
        for agg in range(aggs):
            aid = topo.agg_id(pod, agg)
            topo.switches.append(aid)
            for leaf in range(l):
                topo.edges.append(Edge(topo.leaf_id(pod, leaf), aid, "local"))
    for group in range(aggs):
        for k in range(cpg):
            cid = topo.core_id(group, k)
            topo.switches.append(cid)
            for pod in range(p):
                topo.edges.append(Edge(topo.agg_id(pod, group), cid,
                                       "global"))
    return topo


def dragonfly(n: int) -> DragonflyTopology:
    """Groups of all-to-all routers with one global link per group pair.

    Canonical derivation: groups g is the smallest power of two with
    ``g * (n/g)`` balanced so routers-per-group a and hosts-per-router p
    are as square as possible; every distinct group pair gets exactly one
    global link, spread round-robin over the group's routers.
    """
    if n < 16 or not _is_pow2(n):
        raise NetworkError(f"dragonfly needs a power-of-two N >= 16, got {n}")
    g = 1
    while g * g * g < n:            # aim for g ~ a ~ p
        g *= 2
    m = n // g
    a = 1
    while a * a < m:
        a *= 2
    p = m // a
    if g * a * p != n:
        raise NetworkError(f"dragonfly cannot factor N={n}")  # pragma: no cover
    topo = DragonflyTopology(kind="dragonfly", n=n,
                             params={"groups": g, "routers_per_group": a,
                                     "hosts_per_router": p},
                             groups=g, routers_per_group=a,
                             hosts_per_router=p)
    for gi in range(g):
        for si in range(a):
            sid = topo.switch_id(gi, si)
            topo.switches.append(sid)
            for k in range(p):
                host = (gi * a + si) * p + k
                topo.edges.append(Edge(host, sid, "edge"))
                topo.attach[host] = sid
        for s1 in range(a):
            for s2 in range(s1 + 1, a):
                topo.edges.append(Edge(topo.switch_id(gi, s1),
                                       topo.switch_id(gi, s2), "local"))
    # One global link per group pair, owner router = pair-counter % a on
    # each side (deterministic round-robin).
    counter = [0] * g
    for g1 in range(g):
        for g2 in range(g1 + 1, g):
            s1 = counter[g1] % a
            s2 = counter[g2] % a
            counter[g1] += 1
            counter[g2] += 1
            topo.global_owner[(g1, g2)] = topo.switch_id(g1, s1)
            topo.global_owner[(g2, g1)] = topo.switch_id(g2, s2)
            topo.edges.append(Edge(topo.switch_id(g1, s1),
                                   topo.switch_id(g2, s2), "global"))
    return topo


def torus(n: int, dims: Optional[Tuple[int, ...]] = None) -> TorusTopology:
    """2D/3D torus; hosts are the routers (no separate switch layer).

    Canonical derivation: a cube if N has an integer cube root >= 4,
    otherwise the most-square power-of-two 2D grid.
    """
    if n < 8 or not _is_pow2(n):
        raise NetworkError(f"torus needs a power-of-two N >= 8, got {n}")
    if dims is None:
        c = round(n ** (1 / 3))
        if c >= 4 and c * c * c == n:
            dims = (c, c, c)
        else:
            r = 1
            while r * r < n:
                r *= 2
            dims = (n // r, r) if r * r != n else (r, r)
    total = 1
    for d in dims:
        total *= d
        if d < 2:
            raise NetworkError(f"torus dimension {d} too small")
    if total != n:
        raise NetworkError(f"torus dims {dims} do not cover N={n}")
    topo = TorusTopology(kind="torus", n=n,
                         params={f"dim{i}": d for i, d in enumerate(dims)},
                         dims=tuple(dims))
    for node in range(n):
        topo.attach[node] = node
        coords = topo.coords(node)
        for axis, size in enumerate(dims):
            if size == 2 and coords[axis] == 1:
                continue            # avoid the duplicate wrap link
            nxt = list(coords)
            nxt[axis] = (coords[axis] + 1) % size
            topo.edges.append(Edge(node, topo.node_at(tuple(nxt)), "torus"))
    return topo


_BUILDERS = {"fat-tree": fat_tree, "dragonfly": dragonfly, "torus": torus}

TOPOLOGY_KINDS = tuple(sorted(_BUILDERS))


def build_topology(kind: str, n: int, **params) -> Topology:
    try:
        builder = _BUILDERS[kind]
    except KeyError:
        raise NetworkError(f"unknown topology {kind!r} "
                           f"(one of {TOPOLOGY_KINDS})") from None
    return builder(n, **params)


__all__ = ["Edge", "FabricConfig", "DragonflyTopology", "FatTreeTopology",
           "Topology", "TorusTopology", "TOPOLOGY_KINDS", "build_topology",
           "dragonfly", "fat_tree", "torus", "_mix"]
