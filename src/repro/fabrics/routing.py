"""Per-packet routing policies over :class:`PolicyRouter`.

Every policy implements ``select(router, packet) -> peer_id`` and stamps
``packet.meta["vc"]`` for the chosen hop.  All choices are deterministic
functions of (topology, packet identity, simulator-visible congestion
state): spreading decisions use the salt-free :func:`~.topology._mix`
hash of ``(src, dst, flow id)`` — never ``hash()`` or ``Packet.seq`` —
so the same seed replays the exact hop sequence bit-identically.

Deadlock avoidance is by virtual channels:

* torus dimension-order uses the classic dateline scheme — packets start
  each ring on VC0 and switch to VC1 at the wrap edge, so neither VC's
  channel-dependency graph closes a cycle;
* fat-tree up/down is cycle-free by construction (VC0 only);
* dragonfly bumps the VC at every global-link traversal (minimal needs
  2 VCs, Valiant/UGAL need 3 — the :class:`~.topology.FabricConfig`
  default).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import NetworkError
from ..network.fabric import Endpoint, NetworkFabric, RouterEndpoint
from ..network.packet import Packet
from ..sim import Simulator
from .topology import (DragonflyTopology, FabricConfig, FatTreeTopology,
                       Topology, TorusTopology, _mix)

ROUTINGS = ("minimal", "valiant", "ugal")


class PolicyRouter(RouterEndpoint):
    """A switch whose next hop comes from a routing policy, per packet."""

    def __init__(self, sim: Simulator, node_id: int,
                 forward_time: Optional[float] = None,
                 policy=None) -> None:
        super().__init__(sim, node_id, forward_time)
        self.policy = policy
        #: When set, every routing decision appends ``(here, peer)`` to
        #: ``packet.meta["path"]`` — used by the property tests.
        self.record_paths = False

    def route(self, packet: Packet) -> Endpoint:
        peer = self.policy.select(self, packet)
        if self.record_paths:
            packet.meta.setdefault("path", []).append((self.node_id, peer))
        try:
            return self._links[peer]
        except KeyError:
            raise NetworkError(
                f"policy routed node {self.node_id} -> {peer} but no such "
                f"link exists") from None


class DimensionOrderPolicy:
    """Torus: resolve coordinates axis by axis, minimal direction, ties
    toward +; dateline VC switch at each ring's wrap edge."""

    def __init__(self, topo: TorusTopology) -> None:
        self.topo = topo

    def select(self, router: PolicyRouter, packet: Packet) -> int:
        topo = self.topo
        here = topo.coords(router.node_id)
        there = topo.coords(packet.dst_node)
        meta = packet.meta
        for axis, size in enumerate(topo.dims):
            if here[axis] == there[axis]:
                continue
            fwd = (there[axis] - here[axis]) % size
            back = (here[axis] - there[axis]) % size
            step = 1 if fwd <= back else -1
            nxt = list(here)
            nxt[axis] = (here[axis] + step) % size
            if meta.get("to_axis") != axis:
                meta["to_axis"] = axis
                meta["to_vc"] = 0
            if ((step == 1 and here[axis] == size - 1)
                    or (step == -1 and here[axis] == 0)):
                meta["to_vc"] = 1           # crossing the dateline
            meta["vc"] = meta["to_vc"]
            return topo.node_at(tuple(nxt))
        raise NetworkError(
            f"dimension-order asked to route a packet already at its "
            f"destination {packet.dst_node}")  # pragma: no cover


class UpDownPolicy:
    """Fat-tree: climb toward a deterministic-ECMP core, then the unique
    down path.  Cycle-free, single VC."""

    def __init__(self, topo: FatTreeTopology) -> None:
        self.topo = topo

    def select(self, router: PolicyRouter, packet: Packet) -> int:
        topo = self.topo
        sid = router.node_id
        dst = packet.dst_node
        fid = _mix(packet.src_node, dst, packet.meta.get("fid", 0))
        base = topo.n
        nleaf = topo.pods * topo.leaves_per_pod
        nagg = topo.pods * topo.aggs_per_pod
        if sid < base + nleaf:                              # leaf switch
            if topo.host_leaf(dst) == sid:
                return dst                                  # down to host
            pod = (sid - base) // topo.leaves_per_pod
            return topo.agg_id(pod, fid % topo.aggs_per_pod)
        if sid < base + nleaf + nagg:                       # agg switch
            idx = sid - base - nleaf
            pod, group = divmod(idx, topo.aggs_per_pod)
            if topo.host_pod(dst) == pod:
                return topo.host_leaf(dst)                  # down
            return topo.core_id(group, fid % topo.cores_per_group)
        group = (sid - base - nleaf - nagg) // topo.cores_per_group
        return topo.agg_id(topo.host_pod(dst), group)       # core: down


class DragonflyPolicy:
    """Dragonfly minimal / Valiant / UGAL.

    The group itinerary is fixed once at the source switch (stored in
    ``meta["df_route"]``); UGAL compares the credit occupancy of the
    first hop of the minimal vs the Valiant path and needs flow control
    enabled to sense anything (it degrades to minimal otherwise).
    """

    UGAL_BIAS = 1                       # hops of slack granted to minimal

    def __init__(self, topo: DragonflyTopology, mode: str = "minimal") -> None:
        if mode not in ROUTINGS:
            raise NetworkError(f"unknown dragonfly routing {mode!r}")
        self.topo = topo
        self.mode = mode

    # -- congestion sensing -------------------------------------------------
    @staticmethod
    def _depth(router: PolicyRouter, peer: int) -> int:
        ep = router._links.get(peer)
        if ep is None or ep.link.flow is None:
            return 0
        return (ep.link.flow.in_flight(ep.side)
                + ep.link.flow.waiting(ep.side))

    def _first_hop(self, router: PolicyRouter, target_group: int) -> int:
        """The peer this switch would use heading for ``target_group``."""
        topo = self.topo
        myg = topo.switch_group(router.node_id)
        if target_group == myg:
            return router.node_id
        owner = topo.global_owner[(myg, target_group)]
        if owner == router.node_id:
            return topo.global_owner[(target_group, myg)]
        return owner

    def _itinerary(self, router: PolicyRouter, packet: Packet,
                   myg: int, dg: int) -> List[int]:
        topo = self.topo
        if self.mode == "minimal" or topo.groups <= 3:
            return [dg]
        others = [g for g in range(topo.groups) if g not in (myg, dg)]
        mid = others[_mix(packet.src_node, packet.dst_node,
                          packet.meta.get("fid", 0)) % len(others)]
        if self.mode == "valiant":
            return [mid, dg]
        q_min = self._depth(router, self._first_hop(router, dg))
        q_val = self._depth(router, self._first_hop(router, mid))
        if q_min <= 2 * q_val + self.UGAL_BIAS:
            return [dg]
        return [mid, dg]

    def select(self, router: PolicyRouter, packet: Packet) -> int:
        topo = self.topo
        sid = router.node_id
        dst = packet.dst_node
        meta = packet.meta
        if topo.host_switch(dst) == sid:
            return dst
        myg = topo.switch_group(sid)
        dg = topo.host_group(dst)
        if "df_route" not in meta:
            meta["df_route"] = self._itinerary(router, packet, myg, dg)
            meta["df_vc"] = 0
        route = meta["df_route"]
        while route and route[0] == myg:
            route.pop(0)                # waypoint reached
        if not route:
            meta["vc"] = meta["df_vc"]
            return topo.host_switch(dst)    # local hop to dst's switch
        target = route[0]
        owner = topo.global_owner[(myg, target)]
        if owner == sid:
            meta["vc"] = meta["df_vc"]      # the global hop itself
            meta["df_vc"] += 1              # everything after rides higher
            return topo.global_owner[(target, myg)]
        meta["vc"] = meta["df_vc"]
        return owner                        # local hop to the gateway


def default_policy(topo: Topology, routing: str = "minimal"):
    if isinstance(topo, TorusTopology):
        return DimensionOrderPolicy(topo)
    if isinstance(topo, FatTreeTopology):
        return UpDownPolicy(topo)
    if isinstance(topo, DragonflyTopology):
        return DragonflyPolicy(topo, routing)
    raise NetworkError(f"no routing policy for topology {topo.kind!r}")


@dataclass
class FabricInstance:
    """One simulated fabric: topology + wired links + policy routers."""

    sim: Simulator
    topology: Topology
    config: FabricConfig
    net: NetworkFabric
    policy: object
    routers: Dict[int, PolicyRouter] = field(default_factory=dict)

    @property
    def n(self) -> int:
        return self.topology.n

    def attachment(self, host: int):
        return self.net.attachment(host)

    def set_record_paths(self, on: bool) -> None:
        for router in self.routers.values():
            router.record_paths = on

    # -- congestion stats ---------------------------------------------------
    def flow_stats(self) -> Dict[str, float]:
        stalls = stall_time = peak = in_flight = 0
        for link in self.net.links().values():
            if link.flow is None:
                continue
            stalls += link.flow.total_stalls
            stall_time += link.flow.total_stall_time
            peak = max(peak, *link.flow.peak_in_flight)
            in_flight += (link.flow.in_flight(0) + link.flow.in_flight(1))
        return {"stalls": stalls, "stall_time": stall_time,
                "peak_in_flight": peak, "in_flight": in_flight}

    def link_packets(self) -> Dict[Tuple[int, int], Tuple[int, int]]:
        """Per-link (dir0, dir1) packet counts — the replay fingerprint."""
        return {key: tuple(link.packets_sent)
                for key, link in sorted(self.net.links().items())}


def instantiate(sim: Simulator, topo: Topology,
                config: Optional[FabricConfig] = None,
                routing: str = "minimal") -> FabricInstance:
    """Wire ``topo`` into ``sim``: links with per-class configs, a policy
    router on every switch (every host, on a torus), and causal actor
    labels on each link side so credit stalls can be blamed."""
    config = config or FabricConfig()
    net = NetworkFabric(sim)
    for e in topo.edges:
        net.connect(e.a, e.b, config.link_config(e.cls))
    policy = default_policy(topo, routing)
    inst = FabricInstance(sim=sim, topology=topo, config=config, net=net,
                          policy=policy)
    router_nodes = (list(range(topo.n)) if isinstance(topo, TorusTopology)
                    else list(topo.switches))

    def factory(s, node_id, forward_time):
        return PolicyRouter(s, node_id, forward_time, policy)

    for nid in router_nodes:
        inst.routers[nid] = net.make_router(nid, forward_time=None,
                                            factory=factory)

    def label(nid: int) -> str:
        return f"n{nid}" if nid < topo.n else f"fab.s{nid}"

    for (lo, hi), link in net.links().items():
        link.actor_labels[0] = label(lo)
        link.actor_labels[1] = label(hi)
    return inst


__all__ = ["ROUTINGS", "DimensionOrderPolicy", "DragonflyPolicy",
           "FabricInstance", "PolicyRouter", "UpDownPolicy",
           "default_policy", "instantiate"]
