"""Adversarial traffic patterns: deadlock + congestion canaries.

Full permutation traffic — every host streams to a distinct destination,
every host is a destination — is the classic stressor for credit-based
fabrics: if the VC scheme leaves a cyclic channel dependency, finite
credits wedge the whole fabric.  The simulator turns that into a
*detectable* verdict: a wedged run drains the event heap with processes
still live and :class:`~repro.errors.SimulationError`-family
``DeadlockError`` fires, rather than hanging.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import SimulationError
from ..network.packet import Packet, PacketKind
from .collective import FABRIC_HEADER, FabricHost
from .routing import FabricInstance


def permutation(n: int, seed: int) -> Dict[int, int]:
    """A seeded fixed-point-free permutation of ``range(n)``."""
    rng = random.Random(seed)
    while True:
        perm = list(range(n))
        rng.shuffle(perm)
        if all(perm[i] != i for i in range(n)):
            return {i: perm[i] for i in range(n)}


@dataclass
class TrafficResult:
    pattern: str
    n: int
    messages: int                   # per host
    completed: bool
    deadlocked: bool
    time: float
    stalls: int
    stall_time: float
    peak_in_flight: int
    events: int


def run_permutation(instance: FabricInstance, messages: int = 4,
                    payload: int = 256, seed: int = 1,
                    limit: Optional[float] = None) -> TrafficResult:
    """Every host sends ``messages`` packets to its permutation partner
    and drains the same count from its inverse partner."""
    sim = instance.sim
    n = instance.n
    perm = permutation(n, seed)
    inverse = {dst: src for src, dst in perm.items()}
    hosts = [FabricHost(instance, r) for r in range(n)]
    done = [0]

    def body(rank: int):
        dst = perm[rank]
        src = inverse[rank]
        for m in range(messages):
            yield from hosts[rank].send(dst, bytes(payload), tag=m)
        for m in range(messages):
            yield from hosts[rank].recv(src, tag=m)
        done[0] += 1

    procs = [sim.process(body(r), name=f"perm.r{r}") for r in range(n)]
    deadlocked = False
    try:
        # A cyclic credit dependency drains the heap with senders still
        # blocked -> DeadlockError; a livelock trips the time limit.
        sim.run_until_complete(*procs, limit=limit)
    except SimulationError:
        deadlocked = True
    flow = instance.flow_stats()
    return TrafficResult(
        pattern="permutation", n=n, messages=messages,
        completed=done[0] == n, deadlocked=deadlocked, time=sim.now,
        stalls=int(flow["stalls"]), stall_time=flow["stall_time"],
        peak_in_flight=int(flow["peak_in_flight"]),
        events=sim.events_processed)


def run_hotspot(instance: FabricInstance, messages: int = 4,
                payload: int = 256, target: int = 0) -> TrafficResult:
    """Everyone floods one destination — guaranteed credit stalls; used
    by the forced-congestion canary to make ``blocked-on-credit`` show
    up on critical paths."""
    sim = instance.sim
    n = instance.n
    hosts = [FabricHost(instance, r) for r in range(n)]
    done = [0]

    def sender(rank: int):
        for m in range(messages):
            yield from hosts[rank].send(target, bytes(payload), tag=m)
        done[0] += 1

    def sink():
        for src in range(n):
            if src == target:
                continue
            for m in range(messages):
                yield from hosts[target].recv(src, tag=m)
        done[0] += 1

    procs = [sim.process(sender(r), name=f"hot.r{r}")
             for r in range(n) if r != target]
    procs.append(sim.process(sink(), name="hot.sink"))
    deadlocked = False
    try:
        sim.run_until_complete(*procs)
    except SimulationError:
        deadlocked = True
    flow = instance.flow_stats()
    return TrafficResult(
        pattern="hotspot", n=n, messages=messages,
        completed=done[0] == n, deadlocked=deadlocked, time=sim.now,
        stalls=int(flow["stalls"]), stall_time=flow["stall_time"],
        peak_in_flight=int(flow["peak_in_flight"]),
        events=sim.events_processed)


__all__ = ["TrafficResult", "permutation", "run_hotspot",
           "run_permutation"]
