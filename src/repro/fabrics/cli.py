"""``python -m repro fabrics`` — scale-out fabric sweeps + canaries.

Default: run the acceptance sweep (topology x N x algorithm all-reduce
matrix plus the verdict battery: bit-exactness, closed-form step counts,
ring->halving crossover, zero-cost credits, permutation deadlock
freedom, adaptive replay, trace reconcile, credit blame) and print the
crossover tables.  Exit non-zero if any verdict fails.

``--force-congestion`` runs only the congestion canary: a causally
traced recursive-halving all-reduce under ``credits=1`` whose critical
paths must contain ``blocked-on-credit`` segments — the CI check that
congestion is *attributable*, not just simulated.

Examples::

    python -m repro fabrics --quick                # CI smoke (N=16,32)
    python -m repro fabrics --nodes 64,128,256,512 # the paper-scale sweep
    python -m repro fabrics --topologies torus --algorithms ring,rh
    python -m repro fabrics --force-congestion
    python -m repro fabrics --quick --json out.json
"""

from __future__ import annotations

import argparse
import json
import sys

from .routing import ROUTINGS
from .sweep import (SweepConfig, forced_congestion_blame, render_report,
                    run_sweep)
from .topology import TOPOLOGY_KINDS


def _csv(text: str, what: str, allowed=None):
    values = [v.strip() for v in text.split(",") if v.strip()]
    if not values:
        raise SystemExit(f"empty {what} list")
    if allowed is not None:
        for v in values:
            if v not in allowed:
                raise SystemExit(f"unknown {what} {v!r} "
                                 f"(choose from: {', '.join(allowed)})")
    return tuple(values)


def _csv_ints(text: str, what: str):
    try:
        values = tuple(int(v) for v in text.split(",") if v.strip())
    except ValueError:
        raise SystemExit(f"bad {what} list {text!r}")
    if not values:
        raise SystemExit(f"empty {what} list")
    return values


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro fabrics",
        description="Hierarchical scale-out fabrics: topology-aware "
                    "collectives, credit congestion, acceptance verdicts.")
    parser.add_argument("--topologies", default=",".join(TOPOLOGY_KINDS),
                        help=f"comma-separated topology kinds (default: "
                             f"{','.join(TOPOLOGY_KINDS)})")
    parser.add_argument("--algorithms", default="ring,rh,tree",
                        help="comma-separated all-reduce schedules "
                             "(default: ring,rh,tree)")
    parser.add_argument("--nodes", default="64,128",
                        help="comma-separated power-of-two rank counts "
                             "(default: 64,128; the paper-scale run is "
                             "64,128,256,512)")
    parser.add_argument("--elems", type=int, default=4,
                        help="vector elements per rank (default: 4)")
    parser.add_argument("--iterations", type=int, default=3,
                        help="measured rounds per point (default: 3)")
    parser.add_argument("--routing", default="minimal", choices=ROUTINGS,
                        help="dragonfly inter-group routing "
                             "(default: minimal)")
    parser.add_argument("--seed", type=int, default=1,
                        help="simulator seed (default: 1)")
    parser.add_argument("--quick", action="store_true",
                        help="small fixed sweep for CI smoke runs "
                             "(N=16,32, 2 iterations)")
    parser.add_argument("--force-congestion", action="store_true",
                        help="run ONLY the forced-congestion canary and "
                             "require blocked-on-credit in the blame")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the full report as JSON")
    args = parser.parse_args(argv)

    if args.quick:
        cfg = SweepConfig(nodes=(16, 32), iterations=2, seed=args.seed,
                          routing=args.routing)
    else:
        cfg = SweepConfig(
            topologies=_csv(args.topologies, "topology", TOPOLOGY_KINDS),
            algorithms=_csv(args.algorithms, "algorithm",
                            ("ring", "rh", "tree")),
            nodes=_csv_ints(args.nodes, "node count"),
            elems_per_rank=args.elems, iterations=args.iterations,
            seed=args.seed, routing=args.routing)

    if args.force_congestion:
        share = forced_congestion_blame(cfg)
        ok = share > 0
        print(f"forced congestion canary: blocked-on-credit share "
              f"{share * 100:.2f}% {'OK' if ok else 'MISSING'}")
        if args.json:
            with open(args.json, "w") as fh:
                json.dump({"blocked_on_credit_share": share, "ok": ok},
                          fh, indent=2)
        return 0 if ok else 1

    report = run_sweep(cfg, progress=lambda m: print(f"  {m}",
                                                     file=sys.stderr))
    print(render_report(report))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2)
        print(f"report -> {args.json}")
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
