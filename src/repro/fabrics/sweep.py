"""The fabrics acceptance sweep: crossover tables + verdicts.

``python -m repro fabrics`` drives this.  One sweep runs every requested
(topology x N x algorithm) all-reduce, then a battery of acceptance
checks:

* **bit-exact** — all algorithms produce byte-identical reduction
  results at every (topology, N) on the same seed,
* **steps-exact** — measured max per-rank sends match each schedule's
  closed form (``2(N-1)`` ring, ``2 log2 N`` halving, ``log2 N`` tree),
* **crossover** — at the largest N, recursive halving beats the ring on
  fat-tree and torus (the reason this subsystem exists),
* **zero-cost** — enabling generous credits changes nothing,
  bit-identically, on an uncongested run,
* **deadlock-free** — full permutation traffic completes under tiny
  credits on every topology (VC schemes hold),
* **replay** — an adaptive (UGAL) dragonfly run repeats bit-identically
  from the same seed,
* **trace-reconcile** — a causally-traced run's critical paths cover the
  measured times within 1% (exactly 0, in practice), and a forced-
  congestion run shows ``blocked-on-credit`` in the blame partition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..sim import Simulator
from .collective import (CollectiveResult, expected_phases, expected_steps,
                         run_collective)
from .topology import TOPOLOGY_KINDS, FabricConfig, build_topology
from .traffic import run_permutation

#: Reconcile gate on traced runs (the measured bound is exactly 0.0).
TRACE_TOLERANCE = 0.01


@dataclass(frozen=True)
class SweepConfig:
    topologies: Tuple[str, ...] = TOPOLOGY_KINDS
    algorithms: Tuple[str, ...] = ("ring", "rh", "tree")
    nodes: Tuple[int, ...] = (64, 512)
    elems_per_rank: int = 4
    iterations: int = 3
    seed: int = 1
    routing: str = "minimal"            # dragonfly inter-group policy
    #: Credits for the deadlock/congestion canaries (the timing runs stay
    #: flow-control-free so the crossover numbers are clean).
    canary_credits: int = 2
    canary_nodes: int = 16
    perm_messages: int = 6


@dataclass
class Verdict:
    name: str
    ok: bool
    detail: str

    def row(self) -> str:
        return f"  [{'PASS' if self.ok else 'FAIL'}] {self.name}: {self.detail}"


@dataclass
class SweepReport:
    config: SweepConfig
    results: List[CollectiveResult] = field(default_factory=list)
    verdicts: List[Verdict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(v.ok for v in self.verdicts)

    def result(self, topology: str, n: int,
               algorithm: str) -> Optional[CollectiveResult]:
        for r in self.results:
            if (r.topology, r.n, r.algorithm) == (topology, n, algorithm):
                return r
        return None

    def to_dict(self) -> dict:
        return {
            "config": {
                "topologies": list(self.config.topologies),
                "algorithms": list(self.config.algorithms),
                "nodes": list(self.config.nodes),
                "elems_per_rank": self.config.elems_per_rank,
                "iterations": self.config.iterations,
                "seed": self.config.seed,
                "routing": self.config.routing,
            },
            "results": [{
                "topology": r.topology, "n": r.n, "algorithm": r.algorithm,
                "p50_time_us": r.p50_time * 1e6,
                "p50_step_time_us": r.p50_step_time * 1e6,
                "steps": r.steps, "phases": r.phases, "packets": r.packets,
                "correct": r.correct, "events": r.events,
            } for r in self.results],
            "verdicts": [{"name": v.name, "ok": v.ok, "detail": v.detail}
                         for v in self.verdicts],
            "ok": self.ok,
        }


def _run_one(cfg: SweepConfig, kind: str, n: int, algorithm: str,
             credits: Optional[int] = None,
             traced: bool = False):
    sim = Simulator(seed=cfg.seed)
    tracer = None
    if traced:
        from ..obs.tracer import SpanTracer
        tracer = SpanTracer(sim, categories=("causal",))
        sim.set_tracer(tracer)
    topo = build_topology(kind, n)
    inst = instantiate_for(sim, topo, cfg, credits)
    result = run_collective(inst, algorithm,
                            elems_per_rank=cfg.elems_per_rank,
                            iterations=cfg.iterations)
    return result, tracer


def instantiate_for(sim, topo, cfg: SweepConfig, credits: Optional[int]):
    from .routing import instantiate
    return instantiate(sim, topo, FabricConfig(credits=credits),
                       routing=cfg.routing)


def run_sweep(cfg: Optional[SweepConfig] = None,
              progress=None) -> SweepReport:
    cfg = cfg or SweepConfig()
    report = SweepReport(config=cfg)
    say = progress or (lambda _msg: None)

    # -- the timing matrix ---------------------------------------------------
    for kind in cfg.topologies:
        for n in cfg.nodes:
            for algorithm in cfg.algorithms:
                say(f"{kind} N={n} {algorithm} ...")
                result, _ = _run_one(cfg, kind, n, algorithm)
                report.results.append(result)

    # -- verdicts ------------------------------------------------------------
    report.verdicts.append(_verdict_correct(report))
    report.verdicts.append(_verdict_bit_exact(report))
    report.verdicts.append(_verdict_steps(report))
    report.verdicts.append(_verdict_crossover(report))
    say("zero-cost check ...")
    report.verdicts.append(_verdict_zero_cost(cfg))
    say("permutation deadlock canary ...")
    report.verdicts.append(_verdict_deadlock_free(cfg))
    say("adaptive replay determinism ...")
    report.verdicts.append(_verdict_replay(cfg))
    say("trace reconcile ...")
    report.verdicts.append(_verdict_trace(cfg))
    say("forced congestion blame ...")
    report.verdicts.append(_verdict_congestion_blame(cfg))
    return report


# -- individual verdicts ---------------------------------------------------------------
def _verdict_correct(report: SweepReport) -> Verdict:
    bad = [f"{r.topology}/N{r.n}/{r.algorithm}" for r in report.results
           if not r.correct]
    return Verdict("numerics", not bad,
                   "every rank matches the exact reduction"
                   if not bad else f"wrong results: {', '.join(bad)}")


def _verdict_bit_exact(report: SweepReport) -> Verdict:
    bad = []
    combos = sorted({(r.topology, r.n) for r in report.results})
    for kind, n in combos:
        digests = {r.digest for r in report.results
                   if (r.topology, r.n) == (kind, n)}
        if len(digests) > 1:
            bad.append(f"{kind}/N{n}")
    return Verdict("bit-exact", not bad,
                   f"identical bytes across algorithms at "
                   f"{len(combos)} (topology, N) points"
                   if not bad else f"digests diverge: {', '.join(bad)}")


def _verdict_steps(report: SweepReport) -> Verdict:
    bad = []
    for r in report.results:
        want = expected_steps(r.algorithm, r.n)
        if r.steps != want or r.phases != expected_phases(r.algorithm, r.n):
            bad.append(f"{r.topology}/N{r.n}/{r.algorithm} "
                       f"steps={r.steps} want={want}")
    return Verdict("steps-exact", not bad,
                   "measured step counts match every schedule's closed form"
                   if not bad else "; ".join(bad))


def _verdict_crossover(report: SweepReport) -> Verdict:
    n = max(report.config.nodes)
    details, ok = [], True
    for kind in report.config.topologies:
        if kind == "dragonfly":
            continue                    # acceptance names fat-tree + torus
        ring = report.result(kind, n, "ring")
        rh = report.result(kind, n, "rh")
        if ring is None or rh is None:
            ok = False
            details.append(f"{kind}: missing ring/rh at N={n}")
            continue
        speedup = ring.p50_time / rh.p50_time
        if rh.p50_time >= ring.p50_time:
            ok = False
        details.append(f"{kind} N={n}: ring/rh = {speedup:.1f}x")
    return Verdict("ring->rh crossover", ok, "; ".join(details))


def _verdict_zero_cost(cfg: SweepConfig) -> Verdict:
    kind = cfg.topologies[0]
    n = min(cfg.nodes)
    times = []
    for credits in (None, 64):
        result, _ = _run_one(cfg, kind, n, "rh", credits=credits)
        times.append(tuple(result.times))
    ok = times[0] == times[1]
    return Verdict("credits zero-cost", ok,
                   f"{kind} N={n}: disabled vs uncontended-enabled "
                   + ("bit-identical" if ok else f"DIFFER {times}"))


def _verdict_deadlock_free(cfg: SweepConfig) -> Verdict:
    details, ok = [], True
    for kind in cfg.topologies:
        sim = Simulator(seed=cfg.seed + 1)
        topo = build_topology(kind, cfg.canary_nodes)
        inst = instantiate_for(sim, topo, cfg, cfg.canary_credits)
        r = run_permutation(inst, messages=cfg.perm_messages,
                            payload=2048, seed=cfg.seed + 2)
        if not r.completed or r.deadlocked:
            ok = False
        details.append(f"{kind}: {'ok' if r.completed else 'WEDGED'} "
                       f"({r.stalls} stalls)")
    return Verdict("permutation deadlock-free", ok, "; ".join(details))


def _verdict_replay(cfg: SweepConfig) -> Verdict:
    fingerprints = []
    for _ in range(2):
        sim = Simulator(seed=cfg.seed + 3)
        topo = build_topology("dragonfly", max(cfg.canary_nodes, 32))
        inst = instantiate_for(sim, topo, cfg, 4)
        inst.policy.mode = "ugal"
        r = run_permutation(inst, messages=cfg.perm_messages,
                            payload=1024, seed=cfg.seed + 4)
        fingerprints.append((r.time, r.stalls,
                             tuple(sorted(inst.link_packets().items()))))
    ok = fingerprints[0] == fingerprints[1]
    return Verdict("adaptive replay deterministic", ok,
                   "UGAL dragonfly permutation repeats bit-identically"
                   if ok else "replays diverged")


def _verdict_trace(cfg: SweepConfig) -> Verdict:
    from ..causal.critpath import analyze_run
    result, tracer = _run_one(cfg, cfg.topologies[0], min(cfg.nodes), "rh",
                              traced=True)
    rec = analyze_run(tracer).reconcile(result.times)
    ok = rec["ok"] and rec["max_error"] <= TRACE_TOLERANCE
    return Verdict("trace reconcile", ok,
                   f"max path error {rec['max_error']:.2e} "
                   f"(bound {TRACE_TOLERANCE})")


def _verdict_congestion_blame(cfg: SweepConfig) -> Verdict:
    share = forced_congestion_blame(cfg)
    ok = share > 0
    return Verdict("credit stalls on critical path", ok,
                   f"blocked-on-credit share {share * 100:.1f}% on a "
                   f"congested halving/doubling exchange at credits=1")


def forced_congestion_blame(cfg: Optional[SweepConfig] = None) -> float:
    """Run the forced-congestion canary: a congested traced all-reduce
    whose critical paths must contain ``blocked-on-credit`` segments.
    Returns that category's blame share (0..1).

    The canary runs recursive halving rather than the ring: with per-VC
    relay workers the ring's balanced neighbor traffic pipelines cleanly
    even at one credit (stalls resolve in zero time), while rh's
    long-range xor-partner exchanges converge on shared links and hold
    real credit waits on the critical path."""
    from ..causal.critpath import analyze_run
    from ..obs.tracer import SpanTracer
    cfg = cfg or SweepConfig()
    sim = Simulator(seed=cfg.seed + 5)
    tracer = SpanTracer(sim, categories=("causal",))
    sim.set_tracer(tracer)
    topo = build_topology(cfg.topologies[0], cfg.canary_nodes)
    inst = instantiate_for(sim, topo, cfg, 1)
    result = run_collective(inst, "rh", elems_per_rank=64, iterations=2)
    analysis = analyze_run(tracer)
    if not analysis.reconcile(result.times)["ok"]:
        return -1.0
    return analysis.blame_shares().get("blocked-on-credit", 0.0)


# -- rendering -------------------------------------------------------------------------
def render_report(report: SweepReport) -> str:
    lines: List[str] = []
    cfg = report.config
    title = (f"Fabric collectives sweep (elems/rank={cfg.elems_per_rank}, "
             f"{cfg.iterations} iterations, seed={cfg.seed})")
    lines += [title, "=" * len(title)]
    for kind in cfg.topologies:
        lines.append("")
        lines.append(f"{kind}: p50 all-reduce time (p50 per-phase time)")
        header = "N".rjust(6)
        for algorithm in cfg.algorithms:
            header += f"{algorithm}".rjust(22)
        lines.append(header)
        for n in cfg.nodes:
            row = f"{n}".rjust(6)
            for algorithm in cfg.algorithms:
                r = report.result(kind, n, algorithm)
                if r is None:
                    row += "-".rjust(22)
                else:
                    cell = (f"{r.p50_time * 1e6:9.1f}us "
                            f"({r.p50_step_time * 1e9:6.0f}ns)")
                    row += cell.rjust(22)
            lines.append(row)
    lines.append("")
    lines.append("Acceptance verdicts")
    lines.append("-------------------")
    for v in report.verdicts:
        lines.append(v.row())
    lines.append("")
    lines.append(f"overall: {'PASS' if report.ok else 'FAIL'}")
    return "\n".join(lines)


__all__ = ["TRACE_TOLERANCE", "SweepConfig", "SweepReport", "Verdict",
           "forced_congestion_blame", "render_report", "run_sweep"]
