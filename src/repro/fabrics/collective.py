"""Packet-level collectives over a fabric: ring vs tree vs halving.

Each rank is a :class:`FabricHost` — one process-level participant that
sends tagged messages through its fabric attachment and demultiplexes
arrivals into per-``(src, tag)`` queues (adaptive routing may reorder
packets between the same pair, so matching is by tag, never arrival
order).  Payloads are real ``struct``-packed float64 vectors and every
reduction applies ``op(owned, incoming)`` in a fixed schedule order, so
with integer-valued inputs all three algorithms produce **bit-exact**
identical results — the sweep's cross-algorithm verdict.

The causal story: when the run's tracer wants the ``causal`` category,
every message carries ``meta["caddr"] = (src, dst, msg_seq)`` and the
stack emits ``snd -> [hop.crd ->] inj -> hop* -> eject -> rcd``; the
extended DAG rules chain those per address so ``critpath`` walks through
fabric hops and blames ``blocked-on-credit`` where a credit gate stalled.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import NetworkError
from ..sim import AllOf, Simulator, Store
from ..network.packet import Packet, PacketKind
from .routing import FabricInstance

#: Fabric message header (routing + tag + transport bookkeeping).
FABRIC_HEADER = 32


def _pack(values: List[float]) -> bytes:
    return struct.pack(f"<{len(values)}d", *values)


def _unpack(blob: bytes) -> List[float]:
    return list(struct.unpack(f"<{len(blob) // 8}d", blob))


def fabric_vector(rank: int, n: int, elems: int) -> List[float]:
    """Deterministic integer-valued payload: exact under every reduction
    order, so bit-exactness across algorithms is meaningful."""
    return [float((13 * rank + 7 * i + 3) % 101) for i in range(elems)]


REDUCE = {
    "sum": lambda a, b: a + b,
    "max": lambda a, b: a if a >= b else b,
}


class FabricHost:
    """One rank's attachment to the fabric: tagged send/recv + demux."""

    def __init__(self, instance: FabricInstance, node_id: int) -> None:
        self.instance = instance
        self.sim: Simulator = instance.sim
        self.node_id = node_id
        self.attachment = instance.attachment(node_id)
        self._queues: Dict[Tuple[int, int], Store] = {}
        self._msg_seq = 0
        self.packets_sent = 0
        self.packets_received = 0
        self.sim.process(self._demux(),
                         name=f"fabhost{node_id}.demux")

    def _queue(self, src: int, tag: int) -> Store:
        key = (src, tag)
        store = self._queues.get(key)
        if store is None:
            store = Store(self.sim, name=f"fabhost{self.node_id}.q{key}")
            self._queues[key] = store
        return store

    def _demux(self):
        trc = self.sim.tracer
        while True:
            packet = yield self.attachment.recv()
            self.packets_received += 1
            if trc.enabled and trc.wants("causal"):
                caddr = packet.meta.get("caddr")
                if caddr is not None:
                    trc.flow_event("eject", f"n{self.node_id}.fab",
                                   addr=caddr, src=packet.src_node)
            yield self._queue(packet.src_node,
                              packet.meta.get("tag", 0)).put(packet)

    # -- messaging ----------------------------------------------------------
    def send(self, dst: int, payload: bytes, tag: int = 0):
        """Process fragment: inject one tagged message toward ``dst``;
        returns once the first hop has fully serialized it."""
        seq = self._msg_seq
        self._msg_seq += 1
        meta = {"tag": tag, "fid": seq}
        trc = self.sim.tracer
        causal = trc.enabled and trc.wants("causal")
        if causal:
            caddr = (self.node_id, dst, seq)
            meta["caddr"] = caddr
            trc.flow_event("snd", f"n{self.node_id}", addr=caddr,
                           dst=dst, bytes=len(payload), tag=tag)
        packet = Packet(PacketKind.FABRIC, self.node_id, dst,
                        FABRIC_HEADER, payload, meta)
        yield from self.attachment.send(packet)
        self.packets_sent += 1
        if causal:
            trc.flow_event("inj", f"n{self.node_id}", addr=meta["caddr"])

    def recv(self, src: int, tag: int = 0):
        """Process fragment: the next message from ``src`` with ``tag``;
        returns its payload bytes."""
        trc = self.sim.tracer
        causal = trc.enabled and trc.wants("causal")
        if causal:
            trc.flow_event("rcv", f"n{self.node_id}", src=src, tag=tag)
        packet = yield self._queue(src, tag).get()
        if causal and packet.meta.get("caddr") is not None:
            trc.flow_event("rcd", f"n{self.node_id}",
                           addr=packet.meta["caddr"], via="poll",
                           bytes=len(packet.payload))
        return packet.payload


# -- schedules ------------------------------------------------------------------------
def _require_pow2(n: int, name: str) -> None:
    if n & (n - 1) or n < 2:
        raise NetworkError(f"{name} needs a power-of-two rank count, "
                           f"got {n}")


def ring_all_reduce(host: FabricHost, n: int, rank: int,
                    values: List[float], op: Callable, tag0: int):
    """PR 2's schedule at packet level: reduce-scatter then allgather
    around the ring, ``2(N-1)`` steps, one chunk per message."""
    if len(values) % n:
        raise NetworkError("vector length must divide by the rank count")
    chunk = len(values) // n
    out = list(values)
    nxt, prv = (rank + 1) % n, (rank - 1) % n
    steps = 0
    for s in range(n - 1):
        send_idx = (rank - s) % n
        recv_idx = (rank - s - 1) % n
        yield from host.send(
            nxt, _pack(out[send_idx * chunk:(send_idx + 1) * chunk]),
            tag0 + s)
        steps += 1
        incoming = _unpack((yield from host.recv(prv, tag0 + s)))
        base = recv_idx * chunk
        for i, v in enumerate(incoming):
            out[base + i] = op(out[base + i], v)
    for s in range(n - 1):
        send_idx = (rank + 1 - s) % n
        recv_idx = (rank - s) % n
        yield from host.send(
            nxt, _pack(out[send_idx * chunk:(send_idx + 1) * chunk]),
            tag0 + (n - 1) + s)
        steps += 1
        incoming = _unpack((yield from host.recv(prv, tag0 + (n - 1) + s)))
        out[recv_idx * chunk:(recv_idx + 1) * chunk] = incoming
    return out, steps


def rh_all_reduce(host: FabricHost, n: int, rank: int,
                  values: List[float], op: Callable, tag0: int):
    """Recursive halving reduce-scatter + recursive doubling allgather:
    ``2*log2(N)`` phases, message size halving then doubling."""
    _require_pow2(n, "recursive halving")
    if len(values) % n:
        raise NetworkError("vector length must divide by the rank count")
    out = list(values)
    steps = 0
    lo, hi = 0, len(values)             # my active window
    dist = n // 2
    phase = 0
    while dist >= 1:
        partner = rank ^ dist
        mid = (lo + hi) // 2
        if rank & dist:                 # I keep the upper half
            send_lo, send_hi, keep_lo, keep_hi = lo, mid, mid, hi
        else:
            send_lo, send_hi, keep_lo, keep_hi = mid, hi, lo, mid
        yield from host.send(partner, _pack(out[send_lo:send_hi]),
                             tag0 + phase)
        steps += 1
        incoming = _unpack((yield from host.recv(partner, tag0 + phase)))
        for i, v in enumerate(incoming):
            out[keep_lo + i] = op(out[keep_lo + i], v)
        lo, hi = keep_lo, keep_hi
        dist //= 2
        phase += 1
    dist = 1
    while dist < n:                     # mirror: allgather doubling
        partner = rank ^ dist
        yield from host.send(partner, _pack(out[lo:hi]), tag0 + phase)
        steps += 1
        incoming = _unpack((yield from host.recv(partner, tag0 + phase)))
        if rank & dist:                 # partner held the half below mine
            out[2 * lo - hi:lo] = incoming
            lo = 2 * lo - hi
        else:
            out[hi:2 * hi - lo] = incoming
            hi = 2 * hi - lo
        dist *= 2
        phase += 1
    return out, steps


def tree_all_reduce(host: FabricHost, n: int, rank: int,
                    values: List[float], op: Callable, tag0: int):
    """Binomial-tree reduce to rank 0 + binomial broadcast back:
    ``2*ceil(log2 N)`` phases of full-vector messages."""
    out = list(values)
    steps = 0
    mask = 1
    while mask < n:                     # reduce toward rank 0
        if rank & mask:
            yield from host.send(rank ^ mask, _pack(out), tag0)
            steps += 1
            mask <<= 1
            break                       # sent my subtree up; now wait
        src = rank | mask
        if src < n:
            incoming = _unpack((yield from host.recv(src, tag0)))
            for i, v in enumerate(incoming):
                out[i] = op(out[i], v)
        mask <<= 1
    while mask < n:
        mask <<= 1
    # broadcast back down the same tree, top link first
    recv_mask = 0
    m = 1
    while m < n:
        if rank & m:
            recv_mask = m
            break
        m <<= 1
    if rank != 0:
        out = _unpack((yield from host.recv(rank ^ recv_mask, tag0 + 1)))
    m = (recv_mask or mask) >> 1
    while m >= 1:
        child = rank | m
        if child < n and child != rank:
            yield from host.send(child, _pack(out), tag0 + 1)
            steps += 1
        m >>= 1
    return out, steps


ALGORITHMS: Dict[str, Callable] = {
    "ring": ring_all_reduce,
    "rh": rh_all_reduce,
    "tree": tree_all_reduce,
}


def expected_phases(algorithm: str, n: int) -> int:
    """Synchronous phase count of one all-reduce by schedule: the ring
    takes ``2(N-1)`` neighbor exchanges, recursive halving+doubling and
    the binomial tree both take ``2*ceil(log2 N)``."""
    if algorithm == "ring":
        return 2 * (n - 1)
    log = max(1, (n - 1).bit_length())
    return 2 * log


def expected_steps(algorithm: str, n: int) -> int:
    """Exact MAX per-rank send count of one all-reduce by schedule —
    the parameterized version of the old hard-coded ``2(N-1)`` ring
    invariant.  ``rh``/``tree`` counts assume a power-of-two N."""
    if algorithm == "ring":
        return 2 * (n - 1)
    log = max(1, (n - 1).bit_length())
    if algorithm == "rh":
        return 2 * log
    if algorithm == "tree":
        # Rank 0 sends to every bcast child (log of them); every other
        # rank sends once up plus its own children — also <= log.
        return log
    raise NetworkError(f"unknown algorithm {algorithm!r}")


@dataclass
class CollectiveResult:
    """One (topology, algorithm, N) measurement."""

    topology: str
    algorithm: str
    n: int
    elems: int
    times: List[float]                  # per-iteration sim seconds
    steps: int                          # max per-rank message count
    phases: int
    packets: int                        # fabric-wide, incl. relays
    digest: bytes                       # packed final vector (rank 0)
    correct: bool
    stalls: int = 0
    stall_time: float = 0.0
    events: int = 0
    link_packets: dict = field(default_factory=dict)

    @property
    def p50_time(self) -> float:
        times = sorted(self.times)
        return times[len(times) // 2]

    @property
    def p50_step_time(self) -> float:
        return self.p50_time / max(1, self.phases)


def run_collective(instance: FabricInstance, algorithm: str,
                   elems_per_rank: int = 4, op: str = "sum",
                   iterations: int = 3) -> CollectiveResult:
    """Drive one all-reduce algorithm over an instantiated fabric.

    Emits ``req``/``rank`` brackets per iteration when the simulator's
    tracer wants causal flow events, so ``critpath`` can reconcile the
    measured per-iteration times exactly.
    """
    try:
        schedule = ALGORITHMS[algorithm]
    except KeyError:
        raise NetworkError(f"unknown algorithm {algorithm!r} "
                           f"(one of {sorted(ALGORITHMS)})") from None
    sim = instance.sim
    n = instance.n
    reduce_op = REDUCE[op]
    hosts = [FabricHost(instance, r) for r in range(n)]
    elems = elems_per_rank * n
    inputs = [fabric_vector(r, n, elems) for r in range(n)]
    expected = list(inputs[0])
    for vec in inputs[1:]:
        expected = [reduce_op(a, b) for a, b in zip(expected, vec)]
    finals: Dict[int, List[float]] = {}
    steps: Dict[int, int] = {}
    times: List[float] = []

    def rank_body(rank: int, it: int, tag0: int):
        trc = sim.tracer
        causal = trc.enabled and trc.wants("causal")
        if causal:
            trc.flow_event("rank.begin", f"n{rank}", req=it)
        out, nsteps = yield from schedule(hosts[rank], n, rank,
                                          inputs[rank], reduce_op, tag0)
        finals[rank] = out
        steps[rank] = max(steps.get(rank, 0), nsteps)
        if causal:
            trc.flow_event("rank.end", f"n{rank}", req=it)

    def driver():
        trc = sim.tracer
        causal = trc.enabled and trc.wants("causal")
        tag0 = 0
        for it in range(iterations):
            t0 = sim.now
            if causal:
                trc.flow_event("req.begin", "driver", req=it)
            procs = [sim.process(rank_body(r, it, tag0),
                                 name=f"coll.it{it}.r{r}")
                     for r in range(n)]
            # AllOf instead of yielding each process: joining hundreds of
            # already-finished processes one by one would recurse through
            # Process._resume once per join.
            yield AllOf(sim, procs)
            times.append(sim.now - t0)
            if causal:
                trc.flow_event("req.end", "driver", req=it)
            tag0 += 4 * n + 8           # fresh tag space per iteration

    # run_until_complete, not run(): the demux/router pumps never exit,
    # so a drained heap with them alive is normal termination here.
    sim.run_until_complete(sim.process(driver(), name="coll.driver"))
    correct = all(finals[r] == expected for r in range(n))
    flow = instance.flow_stats()
    return CollectiveResult(
        topology=instance.topology.kind, algorithm=algorithm, n=n,
        elems=elems, times=times, steps=max(steps.values()),
        phases=expected_phases(algorithm, n),
        packets=sum(h.packets_sent for h in hosts), digest=_pack(finals[0]),
        correct=correct, stalls=int(flow["stalls"]),
        stall_time=flow["stall_time"], events=sim.events_processed,
        link_packets=instance.link_packets())


__all__ = ["ALGORITHMS", "FABRIC_HEADER", "CollectiveResult", "FabricHost",
           "REDUCE", "expected_phases", "fabric_vector", "run_collective",
           "ring_all_reduce", "rh_all_reduce", "tree_all_reduce"]
