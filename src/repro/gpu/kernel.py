"""Kernel launches: grids of blocks of threads.

A kernel is a device function (generator taking a :class:`ThreadCtx` plus
user arguments) launched over ``grid`` blocks of ``block`` threads.  Each
thread runs as its own simulation process; a block occupies one SM residency
slot for its lifetime.  The :class:`KernelHandle` completes when every thread
has returned, and collects per-thread return values.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple, TYPE_CHECKING

from ..errors import LaunchError
from ..sim import NULL_SPAN, AllOf, Event, Process

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .device import Gpu

DeviceFn = Callable[..., Any]  # generator function: (ctx, *args) -> generator


class KernelHandle(Event):
    """Completion event of a launched kernel."""

    __slots__ = ("fn_name", "grid", "block", "results", "launch_id")

    def __init__(self, gpu: "Gpu", fn_name: str, grid: int, block: int) -> None:
        super().__init__(gpu.sim, f"kernel:{fn_name}")
        self.fn_name = fn_name
        self.grid = grid
        self.block = block
        # Per-GPU launch ordinal; makes trace tracks of concurrent launches
        # (one kernel per stream) distinct.
        self.launch_id = gpu.launches
        gpu.launches += 1
        # results[(block_idx, thread_idx)] = return value of that thread
        self.results: Dict[Tuple[int, int], Any] = {}

    def block_result(self, block_idx: int, thread_idx: int = 0) -> Any:
        return self.results[(block_idx, thread_idx)]


def validate_geometry(gpu: "Gpu", grid: int, block: int) -> None:
    if grid <= 0:
        raise LaunchError(f"grid must have at least one block, got {grid}")
    if block <= 0:
        raise LaunchError(f"block must have at least one thread, got {block}")
    if block > 1024:
        raise LaunchError(f"max 1024 threads per block, got {block}")
    if grid > 2**31 - 1:  # pragma: no cover - sanity bound
        raise LaunchError("grid dimension too large")


def run_kernel(gpu: "Gpu", handle: KernelHandle, fn: DeviceFn, grid: int,
               block: int, args: tuple, track: str = "") -> Any:
    """The launch process body: dispatch blocks onto SM slots, join them.

    ``track`` names the trace timeline the kernel span lands on (one per
    stream, so FIFO launches nest cleanly)."""
    from .thread import ThreadCtx  # local import avoids a cycle

    trc = gpu.sim.tracer
    span = (trc.begin("gpu.kernel", handle.fn_name, track=track or gpu.name,
                      grid=grid, block=block)
            if trc.enabled else NULL_SPAN)
    yield gpu.sim.timeout(gpu.config.launch_overhead)

    block_procs: List[Process] = []
    for b in range(grid):
        block_procs.append(gpu.sim.process(
            _run_block(gpu, handle, fn, b, block, grid, args),
            name=f"{handle.fn_name}:block{b}",
        ))
    try:
        yield AllOf(gpu.sim, block_procs)
    except Exception as exc:
        # A device-side crash (or bad device function) fails the launch.
        span.end(error=repr(exc))
        handle.fail(exc)
        return
    span.end()
    if trc.enabled:
        trc.metrics.counter("gpu.kernels_launched").inc()
    handle.succeed(handle.results)


def _run_block(gpu: "Gpu", handle: KernelHandle, fn: DeviceFn, block_idx: int,
               block_dim: int, grid_dim: int, args: tuple):
    from .thread import ThreadCtx

    from .thread import BlockBarrier

    yield gpu.sm_slots.acquire()
    # One timeline row per block; the launch ordinal keeps concurrent
    # kernels (one block each, many streams) on distinct tracks.
    block_track = f"{gpu.name}:k{handle.launch_id}.b{block_idx}"
    trc = gpu.sim.tracer
    span = (trc.begin("gpu.block", f"{handle.fn_name}:b{block_idx}",
                      track=block_track)
            if trc.enabled else NULL_SPAN)
    try:
        yield gpu.sim.timeout(gpu.config.block_dispatch_overhead)
        barrier = BlockBarrier(gpu.sim, block_dim)
        threads: List[Process] = []
        for t in range(block_dim):
            ctx = ThreadCtx(gpu, block_idx, t, block_dim, grid_dim, barrier,
                            track=(block_track if block_dim == 1
                                   else f"{block_track}.t{t}"))
            gen = fn(ctx, *args)
            if not hasattr(gen, "send"):
                raise LaunchError(
                    f"device function {handle.fn_name!r} must be a generator "
                    "(missing yield?)"
                )
            threads.append(gpu.sim.process(gen, name=f"{handle.fn_name}:b{block_idx}t{t}"))
        joined = yield AllOf(gpu.sim, threads)
        for t, proc in enumerate(threads):
            handle.results[(block_idx, t)] = joined[proc]
    finally:
        span.end()
        gpu.sm_slots.release()
