"""GPU performance counters — the instrumentation behind Tables I and II.

The counter names mirror the nvprof metrics the paper reports:

* ``sysmem read/write transactions`` — 32 B sectors moved over PCIe for
  loads/stores that target host memory or MMIO,
* ``global load/store (64-bit accesses)`` — LSU accesses to device DRAM,
* ``l2 read/write requests, hits`` — sector traffic at the L2,
* ``memory accesses (r/w)`` — all LSU operations executed,
* ``instructions executed``.

Counters are incremented by the executing thread model
(:mod:`repro.gpu.thread`), never estimated after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class CounterSet:
    sysmem_read_transactions: int = 0     # 32 B accesses
    sysmem_write_transactions: int = 0    # 32 B accesses
    global_load_accesses: int = 0         # 64-bit LSU accesses to device DRAM
    global_store_accesses: int = 0
    l2_read_requests: int = 0
    l2_read_hits: int = 0
    l2_read_misses: int = 0
    l2_write_requests: int = 0
    memory_accesses: int = 0              # all loads+stores executed
    instructions_executed: int = 0

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    def snapshot(self) -> "CounterSet":
        return CounterSet(**{f.name: getattr(self, f.name) for f in fields(self)})

    def diff(self, earlier: "CounterSet") -> "CounterSet":
        """Counters accumulated since ``earlier`` (a prior snapshot)."""
        return CounterSet(**{
            f.name: getattr(self, f.name) - getattr(earlier, f.name)
            for f in fields(self)
        })

    def __add__(self, other: "CounterSet") -> "CounterSet":
        return CounterSet(**{
            f.name: getattr(self, f.name) + getattr(other, f.name)
            for f in fields(self)
        })

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def table_rows(self) -> list[tuple[str, int]]:
        """(metric label, value) rows in the layout of the paper's tables."""
        return [
            ("sysmem reads (32B accesses)", self.sysmem_read_transactions),
            ("sysmem writes (32B accesses)", self.sysmem_write_transactions),
            ("globmem64 reads (accesses)", self.global_load_accesses),
            ("globmem64 writes (accesses)", self.global_store_accesses),
            ("l2 read misses", self.l2_read_misses),
            ("l2 read hits", self.l2_read_hits),
            ("l2 read requests", self.l2_read_requests),
            ("l2 write requests", self.l2_write_requests),
            ("memory accesses (r/w)", self.memory_accesses),
            ("instruction executed", self.instructions_executed),
        ]
