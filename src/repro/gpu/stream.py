"""CUDA-style streams: per-stream FIFO ordering of kernels.

Kernels launched into the same stream execute one after another; kernels in
different streams run concurrently (subject to SM residency).  This is what
the paper's ``dev2dev-kernels`` message-rate variant exercises: 32 streams,
each with its own one-block kernel and its own connection (§V-A2, §V-B2).
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from ..sim import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .device import Gpu
    from .kernel import KernelHandle


class Stream:
    """An in-order launch queue on one GPU."""

    _next_id = 0

    def __init__(self, gpu: "Gpu", name: str = "") -> None:
        self.gpu = gpu
        Stream._next_id += 1
        self.name = name or f"stream{Stream._next_id}"
        self._tail: Optional[Event] = None  # completion of the last launch

    @property
    def idle(self) -> bool:
        return self._tail is None or self._tail.processed

    def chain(self, handle: "KernelHandle", launcher) -> None:
        """Internal: order ``launcher`` (a generator) after the current tail."""
        prev = self._tail
        self._tail = handle

        def gated():
            if prev is not None and not prev.processed:
                yield prev
            yield from launcher

        self.gpu.sim.process(gated(), name=f"{self.name}:{handle.fn_name}")

    def synchronize(self):
        """Process fragment: wait until everything in the stream finished."""
        if self._tail is not None and not self._tail.processed:
            yield self._tail
