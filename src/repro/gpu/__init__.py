"""GPU model: device, SM residency, kernels, streams, threads, counters."""

from .config import GpuConfig
from .counters import CounterSet
from .device import Gpu
from .kernel import KernelHandle
from .stream import Stream
from .thread import BlockBarrier, ThreadCtx

__all__ = [
    "Gpu",
    "GpuConfig",
    "CounterSet",
    "KernelHandle",
    "Stream",
    "BlockBarrier",
    "ThreadCtx",
]
