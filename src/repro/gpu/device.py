"""The GPU device: memory, L2, UVA mappings, SM slots, launches.

One :class:`Gpu` owns

* a device-DRAM :class:`~repro.memory.Memory` (placed at ``GPU_DRAM_BASE``
  in the node's physical map and exported over PCIe BAR1 — GPUDirect RDMA),
* an L2 cache model in front of that DRAM (invalidated when a peer device
  DMA-writes device memory),
* a UVA translation table.  Device memory is mapped at construction; host
  memory and NIC MMIO pages must be mapped explicitly — the equivalents of
  ``cudaHostRegister`` and the paper's NVIDIA-driver patch (§III-C),
* SM residency slots and the kernel/stream launch machinery.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from ..errors import GpuError
from ..memory import (
    GPU_DRAM_BASE,
    AddressRange,
    Allocator,
    Cache,
    Memory,
    MemorySpace,
    TranslationTable,
)
from ..pcie import PciePort
from ..sim import Resource, Simulator
from .config import GpuConfig
from .counters import CounterSet
from .kernel import DeviceFn, KernelHandle, run_kernel, validate_geometry
from .stream import Stream


class Gpu:
    """One GPU in a node."""

    def __init__(self, sim: Simulator, name: str = "gpu0",
                 config: Optional[GpuConfig] = None,
                 dram_base: int = GPU_DRAM_BASE) -> None:
        self.sim = sim
        self.name = name
        self.config = config or GpuConfig()
        self.dram = Memory(f"{name}.dram", dram_base, self.config.dram_bytes,
                           MemorySpace.GPU_DRAM)
        self.allocator = Allocator(self.dram)
        self.l2 = Cache(self.config.l2)
        self.counters = CounterSet()
        self.uva = TranslationTable(f"{name}.uva")
        # Device memory is identity-mapped into UVA (as CUDA does).
        self.uva.map(self.dram.range, physical_base=self.dram.range.base,
                     label="device-dram")
        self.sm_slots = Resource(sim, capacity=self.config.max_resident_blocks,
                                 name=f"{name}.sm-slots")
        self.sysmem_read_slots = Resource(sim,
                                          capacity=self.config.sysmem_read_slots,
                                          name=f"{name}.sysmem-mshrs")
        self.default_stream = Stream(self, f"{name}.stream0")
        self.launches = 0  # per-GPU launch ordinal (distinct trace tracks)
        self._port: Optional[PciePort] = None

    # -- wiring -------------------------------------------------------------------
    def attach_port(self, port: PciePort) -> None:
        """Connect the GPU to its node's PCIe fabric; claims device DRAM as
        living behind this port and hooks L2 invalidation on peer writes."""
        self._port = port
        port.fabric.address_map.add(self.dram)
        port.fabric.claim(port, self.dram)
        self.dram.write_hooks.append(self._on_external_write)

    def _on_external_write(self, offset: int, length: int) -> None:
        """A peer PCIe agent wrote device memory: drop stale L2 sectors."""
        self.l2.invalidate(self.dram.range.base + offset, length)

    @property
    def port(self) -> PciePort:
        if self._port is None:
            raise GpuError(f"{self.name} is not attached to a PCIe fabric")
        return self._port

    # -- UVA mappings (driver functionality) ----------------------------------------
    def _map_identity(self, rng: AddressRange, label: str) -> None:
        # Idempotent: remapping an already-mapped range is a no-op, like
        # cudaHostRegister on a registered range from the same context.
        if (self.uva.try_translate(rng.base, 1) == rng.base
                and self.uva.try_translate(rng.end - 1, 1) == rng.end - 1):
            return
        self.uva.map(rng, physical_base=rng.base, label=label)

    def map_host_memory(self, rng: AddressRange) -> None:
        """Map host memory into UVA (cudaHostRegister / zero-copy)."""
        self._map_identity(rng, "host-mapped")

    def map_mmio(self, rng: AddressRange) -> None:
        """Map a device BAR page into UVA — the paper's NVIDIA kernel-driver
        patch that lets device threads poke NIC registers (§III-C, §IV-B)."""
        self._map_identity(rng, "mmio-mapped")

    # -- memory management -------------------------------------------------------------
    def malloc(self, size: int) -> AddressRange:
        """cudaMalloc: device-memory allocation, returned as a UVA range."""
        return self.allocator.alloc(size)

    def free(self, rng: AddressRange) -> None:
        self.allocator.free(rng)

    # -- launches ---------------------------------------------------------------------
    def launch(self, fn: DeviceFn, grid: int = 1, block: int = 1,
               args: Tuple[Any, ...] = (), stream: Optional[Stream] = None) -> KernelHandle:
        """Launch ``fn`` over ``grid`` blocks of ``block`` threads.

        Returns a :class:`KernelHandle` that completes when every thread has
        returned.  Launches into one stream are FIFO; separate streams
        overlap.
        """
        validate_geometry(self, grid, block)
        handle = KernelHandle(self, getattr(fn, "__name__", "kernel"), grid, block)
        st = stream or self.default_stream
        launcher = run_kernel(self, handle, fn, grid, block, args, track=st.name)
        st.chain(handle, launcher)
        return handle

    def stream(self, name: str = "") -> Stream:
        return Stream(self, name)

    # -- host-side copies (cudaMemcpy via the GPU copy engine) ---------------------------
    def memcpy_dtoh(self, host_addr: int, device_addr: int, length: int):
        """Process fragment: copy device -> host over PCIe."""
        phys = self.uva.translate(device_addr, length)
        data = self.dram.read(phys, length)
        yield from self.port.write(host_addr, data, stream_total=length)

    def memcpy_htod(self, device_addr: int, host_addr: int, length: int):
        """Process fragment: copy host -> device over PCIe."""
        data = yield from self.port.read(host_addr, length, stream_total=length)
        phys = self.uva.translate(device_addr, length, write=True)
        self.dram.write(phys, data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gpu {self.name} {self.config.name}>"
