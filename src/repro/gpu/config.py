"""GPU model parameters, calibrated to the paper's Kepler-era testbed.

The defaults approximate a GK110-class part (the K20/K40 family used with
GPUDirect RDMA in 2014): 13 SMXs, 32-wide warps, ~0.9 GHz core clock,
1.5 MiB L2.  Latencies are *visible-to-a-single-thread* latencies, which is
what matters for the paper's single-thread work-request generation and
polling loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError
from ..memory import CacheConfig
from ..units import MIB, NS, US


@dataclass(frozen=True)
class GpuConfig:
    name: str = "kepler-gk110"
    sm_count: int = 13
    warp_size: int = 32
    max_blocks_per_sm: int = 16
    core_clock_hz: float = 0.875e9

    # Memory system (single-thread visible latencies).
    dram_bytes: int = 192 * MIB
    l2: CacheConfig = field(default_factory=CacheConfig)
    l2_hit_latency: float = 250 * NS      # ~220 cycles
    dram_latency: float = 380 * NS        # L2 miss to device DRAM
    # Extra front-end cost the GPU adds to any PCIe-bound access (the LSU ->
    # crossbar -> BAR path), on top of the fabric's own timing.
    sysmem_issue_overhead: float = 300 * NS
    # Concurrent uncached sysmem *reads* the GPU keeps in flight (MSHR-style
    # limit at the PCIe interface).  With many blocks polling host memory the
    # polls serialize here — the effect that keeps GPU-controlled message
    # rates below CPU-controlled ones in Fig. 2.
    sysmem_read_slots: int = 1

    # Kernel machinery.
    launch_overhead: float = 4.5 * US     # host-API to first instruction
    block_dispatch_overhead: float = 0.3 * US

    # Instruction issue: seconds per issued instruction for one thread.
    # A single thread cannot dual-issue and pays full pipeline depth and
    # memory-op issue stalls; ~8 cycles per dependent instruction is the
    # effective rate of sequential control code on Kepler.
    cycles_per_instruction: float = 8.0

    def __post_init__(self) -> None:
        if self.sm_count <= 0 or self.warp_size <= 0 or self.max_blocks_per_sm <= 0:
            raise ConfigError("GPU geometry must be positive")
        if self.core_clock_hz <= 0:
            raise ConfigError("core clock must be positive")
        if self.dram_bytes <= 0:
            raise ConfigError("dram_bytes must be positive")
        for attr in ("l2_hit_latency", "dram_latency", "sysmem_issue_overhead",
                     "launch_overhead", "block_dispatch_overhead"):
            if getattr(self, attr) < 0:
                raise ConfigError(f"{attr} must be non-negative")
        if self.cycles_per_instruction <= 0:
            raise ConfigError("cycles_per_instruction must be positive")
        if self.sysmem_read_slots < 1:
            raise ConfigError("sysmem_read_slots must be >= 1")

    @property
    def instruction_time(self) -> float:
        """Wall time for one issued instruction of a lone thread."""
        return self.cycles_per_instruction / self.core_clock_hz

    @property
    def max_resident_blocks(self) -> int:
        return self.sm_count * self.max_blocks_per_sm
