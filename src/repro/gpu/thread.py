"""The device-thread execution context.

Device code in this library is written as Python generator functions that
receive a :class:`ThreadCtx` and drive it::

    def kernel(ctx, dst, flag):
        yield from ctx.store_u64(dst, 42)        # global store
        val = yield from ctx.load_u64(flag)      # global load (timed, counted)
        yield from ctx.alu(4)                    # pure ALU work

Each operation advances simulated time according to where the address lives
(device DRAM through the L2, host memory / NIC MMIO across PCIe) and
increments the GPU's performance counters — this is how Tables I and II
emerge from execution rather than from estimates.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional, TYPE_CHECKING

from ..errors import GpuError
from ..memory import MemorySpace
from ..sim import NULL_SPAN, AllOf, Process

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .device import Gpu

_SECTOR = 32  # bytes per sysmem/L2 transaction, matching the nvprof metrics


def _sectors(size: int) -> int:
    return max(1, (size + _SECTOR - 1) // _SECTOR)


class BlockBarrier:
    """A reusable (generation-counted) barrier across one block's threads —
    the machinery behind ``__syncthreads()``."""

    def __init__(self, sim, parties: int) -> None:
        if parties < 1:
            raise GpuError(f"barrier needs >= 1 party, got {parties}")
        self.sim = sim
        self.parties = parties
        self._arrived = 0
        self._event = sim.event("barrier")

    def wait(self):
        """Event that fires when every thread of the block has arrived."""
        self._arrived += 1
        event = self._event
        if self._arrived == self.parties:
            self._arrived = 0
            self._event = self.sim.event("barrier")
            event.succeed()
        return event


class ThreadCtx:
    """Execution context of one device thread."""

    def __init__(self, gpu: "Gpu", block_idx: int, thread_idx: int,
                 block_dim: int, grid_dim: int,
                 barrier: Optional[BlockBarrier] = None,
                 track: str = "") -> None:
        self.gpu = gpu
        self.sim = gpu.sim
        self.block_idx = block_idx
        self.thread_idx = thread_idx
        self.block_dim = block_dim
        self.grid_dim = grid_dim
        self._barrier = barrier
        self._outstanding_stores: List[Process] = []
        # Trace track of this thread: one timeline row per device thread.
        # Single-thread blocks (the paper's latency kernels) share the block
        # track so their memory spans nest inside the block span.
        if track:
            self.track = track
        elif block_dim == 1:
            self.track = f"{gpu.name}:b{block_idx}"
        else:
            self.track = f"{gpu.name}:b{block_idx}t{thread_idx}"

    # -- identity helpers -------------------------------------------------------
    @property
    def global_thread_idx(self) -> int:
        return self.block_idx * self.block_dim + self.thread_idx

    # -- pure compute ---------------------------------------------------------------
    def alu(self, n: int = 1) -> Generator:
        """Issue ``n`` dependent ALU instructions."""
        if n < 0:
            raise GpuError(f"negative instruction count {n}")
        if n == 0:
            return
        self.gpu.counters.instructions_executed += n
        yield self.sim.timeout(n * self.gpu.config.instruction_time)

    def alu_parallel(self, n: int, lanes: int) -> Generator:
        """Issue ``n`` ALU instructions spread over ``lanes`` warp threads.

        Models thread-collaborative descriptor/WQE assembly: the warp's
        lanes each build a slice of the descriptor, so the *critical path*
        is ``ceil(n / lanes)`` dependent instructions, while the counters
        still record all ``n`` issued instructions (work is conserved; only
        latency shrinks).  ``lanes=1`` degenerates to :meth:`alu`.
        """
        if n < 0:
            raise GpuError(f"negative instruction count {n}")
        if lanes < 1 or lanes > 32:
            raise GpuError(f"lanes must be 1..32 (one warp), got {lanes}")
        if n == 0:
            return
        self.gpu.counters.instructions_executed += n
        critical = -(-n // lanes)
        yield self.sim.timeout(critical * self.gpu.config.instruction_time)

    # -- address classification -------------------------------------------------------
    def _classify(self, vaddr: int, size: int, write: bool) -> tuple[int, MemorySpace]:
        phys = self.gpu.uva.translate(vaddr, size, write=write)
        space = self.gpu.port.fabric.address_map.space_of(phys)
        return phys, space

    # -- loads ------------------------------------------------------------------------
    def load(self, vaddr: int, size: int) -> Generator:
        """Load ``size`` bytes from a UVA address.  Returns the bytes."""
        if size <= 0:
            raise GpuError(f"non-positive load size {size}")
        gpu = self.gpu
        gpu.counters.instructions_executed += 1
        gpu.counters.memory_accesses += 1
        phys, space = self._classify(vaddr, size, write=False)
        if space is MemorySpace.GPU_DRAM:
            gpu.counters.global_load_accesses += max(1, (size + 7) // 8)
            hits, misses = gpu.l2.read(phys, size)
            gpu.counters.l2_read_requests += hits + misses
            gpu.counters.l2_read_hits += hits
            gpu.counters.l2_read_misses += misses
            latency = gpu.config.l2_hit_latency if misses == 0 else gpu.config.dram_latency
            yield self.sim.timeout(latency)
            return gpu.dram.read(phys, size)
        # Host memory or MMIO: a PCIe round trip, stalling this thread.
        # In-flight uncached reads are bounded (MSHR-style); concurrent
        # pollers from many blocks serialize here.
        gpu.counters.sysmem_read_transactions += _sectors(size)
        trc = self.sim.tracer
        traced = trc.wants("gpu.sysmem")
        span = (trc.begin("gpu.sysmem", "read", track=self.track,
                          addr=hex(phys), bytes=size)
                if traced else NULL_SPAN)
        yield self.sim.timeout(gpu.config.sysmem_issue_overhead)
        yield gpu.sysmem_read_slots.acquire()
        try:
            data = yield from gpu.port.read(phys, size)
        finally:
            gpu.sysmem_read_slots.release()
            span.end()
        if traced:
            trc.metrics.counter("gpu.sysmem_reads").inc()
        return data

    def load_u64(self, vaddr: int) -> Generator:
        data = yield from self.load(vaddr, 8)
        return int.from_bytes(data, "little")

    def load_u32(self, vaddr: int) -> Generator:
        data = yield from self.load(vaddr, 4)
        return int.from_bytes(data, "little")

    # -- stores ------------------------------------------------------------------------
    def store(self, vaddr: int, data: bytes) -> Generator:
        """Store bytes to a UVA address.

        Device-memory stores complete through the L2 (write-allocate) and the
        thread continues after issue.  PCIe-bound stores are *posted*: the
        thread pays the issue overhead and continues while the TLP is in
        flight; FIFO links preserve store order.  Use
        :meth:`fence_system` to wait for global visibility.
        """
        if not data:
            raise GpuError("empty store")
        gpu = self.gpu
        gpu.counters.instructions_executed += 1
        gpu.counters.memory_accesses += 1
        phys, space = self._classify(vaddr, len(data), write=True)
        if space is MemorySpace.GPU_DRAM:
            gpu.counters.global_store_accesses += max(1, (len(data) + 7) // 8)
            hits, misses = gpu.l2.write(phys, len(data))
            gpu.counters.l2_write_requests += hits + misses
            gpu.dram.write(phys, data)
            yield self.sim.timeout(gpu.config.instruction_time)
            return
        gpu.counters.sysmem_write_transactions += _sectors(len(data))
        trc = self.sim.tracer
        if trc.wants("gpu.sysmem"):
            trc.instant("gpu.sysmem", "posted-store", track=self.track,
                        addr=hex(phys), bytes=len(data))
            trc.metrics.counter("gpu.sysmem_writes").inc()
        yield self.sim.timeout(gpu.config.sysmem_issue_overhead)
        proc = self.sim.process(gpu.port.write(phys, data),
                                name=f"posted-store@{vaddr:#x}")
        self._outstanding_stores.append(proc)
        # Drop references to completed stores so the list stays small.
        self._outstanding_stores = [p for p in self._outstanding_stores if p.pending]

    def store_wide(self, vaddr: int, data: bytes) -> Generator:
        """A warp-coalesced store: the threads of a warp emit one wide
        transaction instead of a sequence of scalar stores.

        This is the 'thread-collaborative interface' primitive the paper's
        discussion asks for (§VI claim 2): one issue slot, one TLP, however
        many bytes the warp contributes (up to 128 B — 32 lanes x 4 B).
        """
        if not data:
            raise GpuError("empty store")
        if len(data) > 128:
            raise GpuError(f"wide store limited to 128 bytes, got {len(data)}")
        gpu = self.gpu
        gpu.counters.instructions_executed += 1
        gpu.counters.memory_accesses += 1
        phys, space = self._classify(vaddr, len(data), write=True)
        if space is MemorySpace.GPU_DRAM:
            gpu.counters.global_store_accesses += max(1, (len(data) + 7) // 8)
            hits, misses = gpu.l2.write(phys, len(data))
            gpu.counters.l2_write_requests += hits + misses
            gpu.dram.write(phys, data)
            yield self.sim.timeout(gpu.config.instruction_time)
            return
        gpu.counters.sysmem_write_transactions += _sectors(len(data))
        yield self.sim.timeout(gpu.config.sysmem_issue_overhead)
        proc = self.sim.process(gpu.port.write(phys, data),
                                name=f"posted-wide-store@{vaddr:#x}")
        self._outstanding_stores.append(proc)
        self._outstanding_stores = [p for p in self._outstanding_stores if p.pending]

    def store_u64(self, vaddr: int, value: int) -> Generator:
        yield from self.store(vaddr, (value & (2**64 - 1)).to_bytes(8, "little"))

    def store_u32(self, vaddr: int, value: int) -> Generator:
        yield from self.store(vaddr, (value & (2**32 - 1)).to_bytes(4, "little"))

    def fence_system(self) -> Generator:
        """``__threadfence_system()``: wait until every posted store of this
        thread is globally visible."""
        self.gpu.counters.instructions_executed += 1
        pending = [p for p in self._outstanding_stores if p.pending]
        if pending:
            yield AllOf(self.sim, pending)
        self._outstanding_stores.clear()
        yield self.sim.timeout(self.gpu.config.instruction_time)

    def syncthreads(self) -> Generator:
        """``__syncthreads()``: wait until every thread of this block has
        reached the barrier."""
        if self._barrier is None:
            raise GpuError(
                "syncthreads() outside a kernel launch (no block barrier)")
        self.gpu.counters.instructions_executed += 1
        yield self._barrier.wait()

    # -- spinning -------------------------------------------------------------------
    def spin_until_u64(self, vaddr: int, predicate: Callable[[int], bool],
                       loop_instructions: int = 4,
                       max_polls: Optional[int] = None,
                       backoff_after: int = 64,
                       backoff_base: float = 1e-6,
                       backoff_max: float = 50e-6) -> Generator:
        """Poll a 64-bit location until ``predicate(value)`` holds.

        Returns ``(value, polls)``.  Each iteration pays the load latency of
        wherever ``vaddr`` lives — the crux of the paper's polling analysis —
        plus ``loop_instructions`` of ALU overhead (compare/branch).

        After ``backoff_after`` consecutive misses the loop inserts growing
        idle gaps (the warp is descheduled by the scoreboard); this only
        engages on waits far longer than the latency-path waits the paper's
        counter analysis covers, and keeps multi-millisecond transfers from
        being dominated by poll events.
        """
        trc = self.sim.tracer
        traced = trc.wants("gpu.spin")
        span = (trc.begin("gpu.spin", "spin", track=self.track,
                          addr=hex(vaddr))
                if traced else NULL_SPAN)
        polls = 0
        while True:
            value = yield from self.load_u64(vaddr)
            polls += 1
            yield from self.alu(loop_instructions)
            if predicate(value):
                span.end(polls=polls)
                if traced:
                    trc.metrics.histogram("gpu.spin_polls").observe(polls)
                return value, polls
            if max_polls is not None and polls >= max_polls:
                raise GpuError(
                    f"spin_until_u64 at {vaddr:#x} exceeded {max_polls} polls"
                )
            if polls > backoff_after:
                over = polls - backoff_after
                delay = min(backoff_base * (2 ** (over // 32)), backoff_max)
                yield self.sim.timeout(delay)
