"""PCIe fabric model: links, root-complex routing, peer-to-peer, DMA."""

from .dma import DmaConfig, DmaEngine
from .link import PcieLink, PcieLinkConfig
from .switch import FabricConfig, PcieFabric, PciePort
from .tlp import TLP_OVERHEAD_BYTES, Tlp, TlpKind, chunk_payload

__all__ = [
    "DmaConfig",
    "DmaEngine",
    "PcieLink",
    "PcieLinkConfig",
    "FabricConfig",
    "PcieFabric",
    "PciePort",
    "Tlp",
    "TlpKind",
    "TLP_OVERHEAD_BYTES",
    "chunk_payload",
]
