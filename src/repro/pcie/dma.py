"""DMA engines — how NICs move payload without CPU/GPU involvement.

A :class:`DmaEngine` sits on a PCIe port and copies byte ranges between the
node's memories and the device's internal staging.  Transfers are chunked so
long copies don't monopolize the fabric, and the engine itself is a capacity-1
resource: one NIC DMA context processes one descriptor at a time, which is
the serialization point that bounds message rate on the NIC side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from ..errors import PcieError
from ..sim import NULL_SPAN, Resource, Simulator
from ..units import KIB
from .switch import PciePort


@dataclass(frozen=True)
class DmaConfig:
    chunk_bytes: int = 16 * KIB     # fabric fairness granularity
    setup_time: float = 0.0         # per-transfer engine setup
    contexts: int = 1               # concurrent transfers the engine pipelines

    def __post_init__(self) -> None:
        if self.chunk_bytes <= 0:
            raise PcieError("chunk_bytes must be positive")
        if self.setup_time < 0:
            raise PcieError("setup_time must be non-negative")
        if self.contexts < 1:
            raise PcieError("contexts must be >= 1")


class DmaEngine:
    """A chunking reader/writer bound to one PCIe port."""

    def __init__(self, sim: Simulator, port: PciePort, name: str = "dma",
                 config: DmaConfig | None = None) -> None:
        self.sim = sim
        self.port = port
        self.name = name
        self.config = config or DmaConfig()
        self.busy = Resource(sim, capacity=self.config.contexts, name=f"{name}.ctx")
        # Free-list of context ids: each in-flight transfer borrows one so
        # concurrent transfers land on distinct trace tracks.
        self._free_ctx = list(range(self.config.contexts - 1, -1, -1))
        self.bytes_moved = 0
        self.transfers = 0

    def _track(self, ctx_id: int) -> str:
        if self.config.contexts == 1:
            return self.name
        return f"{self.name}.ctx{ctx_id}"

    def read(self, addr: int, length: int) -> Generator:
        """Gather ``length`` bytes starting at node-physical ``addr``.
        Returns the bytes; simulated time covers the full fetch."""
        if length <= 0:
            raise PcieError(f"DMA read of {length} bytes")
        yield self.busy.acquire()
        ctx_id = self._free_ctx.pop()
        trc = self.sim.tracer
        traced = trc.wants("dma")
        span = (trc.begin("dma", "dma-read", track=self._track(ctx_id),
                          addr=hex(addr), bytes=length)
                if traced else NULL_SPAN)
        try:
            if self.config.setup_time:
                yield self.sim.timeout(self.config.setup_time)
            parts = []
            offset = 0
            while offset < length:
                step = min(self.config.chunk_bytes, length - offset)
                # stream_total triggers the P2P pathology for large streams.
                part = yield from self.port.read(addr + offset, step,
                                                 stream_total=length)
                parts.append(part)
                offset += step
        finally:
            span.end()
            self._free_ctx.append(ctx_id)
            self.busy.release()
        self.bytes_moved += length
        self.transfers += 1
        if traced:
            trc.metrics.counter("dma.bytes_read").inc(length)
        return b"".join(parts)

    def write(self, addr: int, data: bytes) -> Generator:
        """Scatter ``data`` to node-physical ``addr``."""
        if not data:
            raise PcieError("DMA write of zero bytes")
        yield self.busy.acquire()
        ctx_id = self._free_ctx.pop()
        trc = self.sim.tracer
        traced = trc.wants("dma")
        span = (trc.begin("dma", "dma-write", track=self._track(ctx_id),
                          addr=hex(addr), bytes=len(data))
                if traced else NULL_SPAN)
        try:
            if self.config.setup_time:
                yield self.sim.timeout(self.config.setup_time)
            offset = 0
            while offset < len(data):
                step = min(self.config.chunk_bytes, len(data) - offset)
                yield from self.port.write(addr + offset, data[offset:offset + step],
                                           stream_total=len(data))
                offset += step
        finally:
            span.end()
            self._free_ctx.append(ctx_id)
            self.busy.release()
        self.bytes_moved += len(data)
        self.transfers += 1
        if traced:
            trc.metrics.counter("dma.bytes_written").inc(len(data))
