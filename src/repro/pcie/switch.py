"""The root complex: ports, routing, and timed load/store/DMA paths.

Topology per node::

    CPU ──(root port, no link)──┐
                                ├── root complex ── host DRAM
    GPU ──(PcieLink)────────────┤
    NIC ──(PcieLink)────────────┘

* An access whose target lives behind the *root* (host DRAM) crosses only the
  initiator's link.
* A peer-to-peer access (NIC ↔ GPU memory, GPU → NIC BAR) crosses the
  initiator's link *and* the owner's link.

The **P2P read pathology** the paper cites ([14], [15]; visible in Figs. 1b
and 4b as the bandwidth drop past 1 MiB) is modeled here: when a device reads
GPU memory as part of a large logical stream, the completion stream runs at a
degraded bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from ..errors import PcieError
from ..memory import AddressMap, MemorySpace, Memory, MmioWindow
from ..sim import Event, Simulator
from ..units import GB_PER_S, MIB, NS
from .link import PcieLink, PcieLinkConfig
from .tlp import TLP_OVERHEAD_BYTES, Tlp, TlpKind, chunk_payload


@dataclass(frozen=True)
class FabricConfig:
    """Node-level PCIe timing parameters."""

    host_memory_latency: float = 60 * NS    # DRAM access behind the root
    gpu_memory_latency: float = 120 * NS    # GPU DRAM behind its BAR1
    mmio_latency: float = 20 * NS           # device register file
    # Peer-to-peer read pathology (reads *from* GPU memory by another
    # device): completion bandwidth degrades progressively once a logical
    # stream reaches the threshold, down to a floor — matching the measured
    # behaviour of [14]/[15] that Figs. 1b/4b exhibit past 1 MiB.
    p2p_read_threshold: int = 1 * MIB
    p2p_read_floor: float = 0.9 * GB_PER_S
    p2p_pathology_enabled: bool = True


class PciePort:
    """An initiator/owner attachment point on the fabric."""

    def __init__(self, fabric: "PcieFabric", name: str,
                 link: Optional[PcieLink]) -> None:
        self.fabric = fabric
        self.name = name
        self.link = link  # None for the root port (CPU / host DRAM side)
        self.reads_issued = 0
        self.writes_issued = 0
        self.bytes_read = 0
        self.bytes_written = 0

    # Generators — run them with `yield from` inside a process.
    def write(self, addr: int, data: bytes,
              stream_total: Optional[int] = None) -> Generator[Event, None, None]:
        yield from self.fabric._write(self, addr, data, stream_total)

    def read(self, addr: int, length: int,
             stream_total: Optional[int] = None) -> Generator[Event, None, bytes]:
        data = yield from self.fabric._read(self, addr, length, stream_total)
        return data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PciePort {self.name}>"


class PcieFabric:
    """Routing and timing for one node's PCIe hierarchy."""

    def __init__(self, sim: Simulator, address_map: AddressMap,
                 config: FabricConfig | None = None) -> None:
        self.sim = sim
        self.address_map = address_map
        self.config = config or FabricConfig()
        self.ports: Dict[str, PciePort] = {}
        self._owners: Dict[int, PciePort] = {}  # id(target) -> owning port
        self.root = PciePort(self, "root", link=None)
        self.ports["root"] = self.root

    # -- construction -------------------------------------------------------------
    def attach(self, name: str, link_config: PcieLinkConfig | None = None) -> PciePort:
        if name in self.ports:
            raise PcieError(f"duplicate port name {name!r}")
        port = PciePort(self, name, PcieLink(self.sim, name, link_config))
        self.ports[name] = port
        return port

    def claim(self, port: PciePort, target: object) -> None:
        """Declare that ``target`` (a Memory or MmioWindow already present in
        the address map) lives behind ``port``."""
        if port.name not in self.ports:
            raise PcieError(f"unknown port {port!r}")
        self._owners[id(target)] = port

    def owner_of(self, target: object) -> PciePort:
        try:
            return self._owners[id(target)]
        except KeyError:
            raise PcieError(f"no owner declared for {target!r}") from None

    # -- routing helpers -------------------------------------------------------------
    def _resolve(self, addr: int, length: int) -> Tuple[object, int, PciePort]:
        target, offset = self.address_map.resolve(addr, length)
        return target, offset, self.owner_of(target)

    def _target_latency(self, target: object) -> float:
        space: MemorySpace = getattr(target, "space")
        if space is MemorySpace.HOST_DRAM:
            return self.config.host_memory_latency
        if space is MemorySpace.GPU_DRAM:
            return self.config.gpu_memory_latency
        return self.config.mmio_latency

    def _hops(self, src: PciePort, dst: PciePort) -> List[PcieLink]:
        """Links crossed between two ports (0, 1, or 2)."""
        if src is dst:
            return []
        links = [p.link for p in (src, dst) if p.link is not None]
        return links

    @staticmethod
    def _wire_bytes(nbytes: int, max_payload: int) -> int:
        return nbytes + TLP_OVERHEAD_BYTES * len(chunk_payload(nbytes, max_payload))

    def _effective_read_bw(self, target: object, src: PciePort,
                           stream_total: Optional[int], base_bw: float) -> float:
        """Degrade completion bandwidth for large P2P reads of GPU memory."""
        if not self.config.p2p_pathology_enabled:
            return base_bw
        if getattr(target, "space", None) is not MemorySpace.GPU_DRAM:
            return base_bw
        if src is self.root or src.link is None:
            return base_bw  # host-initiated reads are unaffected
        total = stream_total if stream_total is not None else 0
        if total >= self.config.p2p_read_threshold:
            scaled = base_bw * self.config.p2p_read_threshold / (2 * total)
            return min(base_bw, max(self.config.p2p_read_floor, scaled))
        return base_bw

    def _stream(self, hops: List[PcieLink], upstream: bool, nbytes: int,
                bandwidth_cap: Optional[float] = None) -> Generator:
        """Move a data stream across the path: serialization on each hop at
        the bottleneck rate (held one hop at a time, store-and-forward at
        message granularity), plus each hop's propagation latency."""
        if not hops:
            return
        for link in hops:
            bw = link.config.bandwidth
            if bandwidth_cap is not None:
                bw = min(bw, bandwidth_cap)
            wire = self._wire_bytes(nbytes, link.config.max_payload)
            tlp = Tlp(TlpKind.MEM_WRITE, 0, nbytes)
            # Direction bookkeeping: the first hop of an initiator's access is
            # "up" (toward the RC); the final hop toward a device is "down".
            send = link.send_up if upstream else link.send_down
            # Override serialization with the whole-stream wire size.
            yield from send(Tlp(tlp.kind, tlp.address, wire - TLP_OVERHEAD_BYTES), bw)
            upstream = not upstream if len(hops) > 1 else upstream

    # -- timed accesses ---------------------------------------------------------------
    def _write(self, src: PciePort, addr: int, data: bytes,
               stream_total: Optional[int]) -> Generator:
        if not data:
            raise PcieError("zero-length write")
        target, offset, owner = self._resolve(addr, len(data))
        hops = self._hops(src, owner)
        yield from self._stream(hops, upstream=src is not self.root,
                                nbytes=len(data))
        yield self.sim.timeout(self._target_latency(target))
        self._deliver_write(target, offset, data)
        src.writes_issued += 1
        src.bytes_written += len(data)

    def _read(self, src: PciePort, addr: int, length: int,
              stream_total: Optional[int]) -> Generator:
        if length <= 0:
            raise PcieError("non-positive read length")
        target, offset, owner = self._resolve(addr, length)
        hops = self._hops(src, owner)
        # Request phase: a header-only TLP per max_read_request chunk.
        n_requests = len(chunk_payload(length, hops[0].config.max_read_request)) \
            if hops else 1
        if hops:
            req_wire = TLP_OVERHEAD_BYTES * n_requests
            yield from self._stream(hops, upstream=src is not self.root,
                                    nbytes=max(req_wire - TLP_OVERHEAD_BYTES, 1))
        yield self.sim.timeout(self._target_latency(target))
        data = self._collect_read(target, offset, length)
        # Completion phase: data streams back, possibly degraded (P2P pathology).
        bw_cap = self._effective_read_bw(target, src, stream_total,
                                         hops[0].config.bandwidth if hops else float("inf"))
        # The completion's first hop is *up* the owner's link when the target
        # sits behind a device port; otherwise it goes straight down to src.
        yield from self._stream(list(reversed(hops)),
                                upstream=owner.link is not None,
                                nbytes=length,
                                bandwidth_cap=bw_cap if hops else None)
        src.reads_issued += 1
        src.bytes_read += length
        return data

    # -- functional effects ----------------------------------------------------------
    @staticmethod
    def _deliver_write(target: object, offset: int, data: bytes) -> None:
        if isinstance(target, MmioWindow):
            target.write(offset, data)
        elif isinstance(target, Memory):
            target.store.write(offset, data)
            for hook in target.write_hooks:
                hook(offset, len(data))
        else:  # pragma: no cover - map only holds these two kinds
            raise PcieError(f"unwritable target {target!r}")

    @staticmethod
    def _collect_read(target: object, offset: int, length: int) -> bytes:
        if isinstance(target, MmioWindow):
            return target.read(offset, length)
        if isinstance(target, Memory):
            return target.store.read(offset, length)
        raise PcieError(f"unreadable target {target!r}")  # pragma: no cover
