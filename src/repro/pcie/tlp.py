"""PCIe transaction-layer packets (TLPs) — the timing currency of the fabric.

Only the properties that matter for throughput/latency are modeled: kind,
size, and routing.  Payload bytes move functionally at delivery time.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field


class TlpKind(enum.Enum):
    MEM_WRITE = "MWr"        # posted
    MEM_READ = "MRd"         # non-posted, answered by a completion
    COMPLETION = "CplD"      # completion with data


# Gen2/Gen3-era framing overhead per TLP: 12-16 B header + 8 B framing/seq/CRC.
TLP_OVERHEAD_BYTES = 24

_seq = itertools.count()


@dataclass(frozen=True)
class Tlp:
    """One transaction-layer packet."""

    kind: TlpKind
    address: int
    length: int                       # payload bytes (0 for read requests)
    requester: str = ""               # port name, for completions/debug
    tag: int = field(default_factory=lambda: next(_seq))

    @property
    def wire_bytes(self) -> int:
        """Bytes occupying the link, including framing overhead."""
        return TLP_OVERHEAD_BYTES + self.length

    def trace_attrs(self) -> dict:
        """Key/value attributes identifying this TLP on a trace span."""
        return {"kind": self.kind.value, "addr": hex(self.address),
                "bytes": self.length, "tag": self.tag}

    def __str__(self) -> str:
        return f"{self.kind.value}@{self.address:#x}+{self.length}"


def chunk_payload(total: int, max_payload: int) -> list[int]:
    """Split ``total`` bytes into TLP-payload-sized chunks."""
    if total <= 0:
        raise ValueError(f"non-positive payload {total}")
    if max_payload <= 0:
        raise ValueError(f"non-positive max_payload {max_payload}")
    full, rest = divmod(total, max_payload)
    return [max_payload] * full + ([rest] if rest else [])
