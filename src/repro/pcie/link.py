"""The PCIe link timing model.

A link is full duplex: each direction is a FIFO pipe with finite bandwidth.
Sending a TLP costs ``wire_bytes / bandwidth`` of serialization (during which
the direction is busy — this is where contention between concurrent agents
appears) plus a fixed propagation/forwarding latency to arrive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from ..errors import ConfigError
from ..sim import NULL_SPAN, Event, Resource, Simulator
from ..units import GB_PER_S, NS
from .tlp import Tlp, TlpKind

#: Posted writes at or below this payload are control traffic (doorbells,
#: flags, read pointers) rather than data movement; the link counts them
#: separately so MMIO-coalescing optimizations show up in the books.
CTRL_WRITE_BYTES = 8


@dataclass(frozen=True)
class PcieLinkConfig:
    """Timing parameters of one PCIe link (both directions symmetric).

    Defaults approximate a Gen2 x8 link of the paper's era (~4 GB/s raw,
    ~3.2 GB/s effective after encoding).
    """

    bandwidth: float = 3.2 * GB_PER_S   # effective bytes/second per direction
    latency: float = 160 * NS           # one-way: PHY + switch + root complex
    max_payload: int = 256              # bytes per MEM_WRITE / COMPLETION TLP
    max_read_request: int = 512         # bytes per MEM_READ request

    def __post_init__(self) -> None:
        if self.bandwidth <= 0 or self.latency < 0:
            raise ConfigError("link bandwidth must be positive, latency non-negative")
        if self.max_payload <= 0 or self.max_read_request <= 0:
            raise ConfigError("TLP size limits must be positive")


class PcieLink:
    """One direction-pair between a device and the root complex."""

    def __init__(self, sim: Simulator, name: str,
                 config: PcieLinkConfig | None = None) -> None:
        self.sim = sim
        self.name = name
        self.config = config or PcieLinkConfig()
        # Independent serializers per direction.
        self._up = Resource(sim, capacity=1, name=f"{name}.up")     # device -> RC
        self._down = Resource(sim, capacity=1, name=f"{name}.down") # RC -> device
        self.tlps_up = 0
        self.tlps_down = 0
        self.bytes_up = 0
        self.bytes_down = 0
        self.ctrl_writes_up = 0
        self.ctrl_writes_down = 0

    def _send(self, direction: Resource, tlp: Tlp,
              bandwidth: float) -> Generator[Event, None, None]:
        """Occupy one direction for the TLP's serialization time, then wait
        out the propagation latency.  Returns at *delivery* time."""
        up = direction is self._up
        trc = self.sim.tracer
        # Per-TLP instrumentation is the hottest site in the stack; gate on
        # wants() so a category-filtered tracer (the telemetry flight
        # recorder) skips the str(tlp)/attrs construction entirely.
        traced = trc.wants("pcie")
        yield direction.acquire()
        # The span covers the serialization window only (the direction is
        # exclusively held), so spans on one link track never overlap.
        span = (trc.begin("pcie", str(tlp),
                          track=f"{self.name}.{'up' if up else 'down'}",
                          **tlp.trace_attrs())
                if traced else NULL_SPAN)
        try:
            yield self.sim.timeout(tlp.wire_bytes / bandwidth)
        finally:
            span.end()
            direction.release()
        ctrl = (tlp.kind is TlpKind.MEM_WRITE
                and tlp.length <= CTRL_WRITE_BYTES)
        if up:
            self.tlps_up += 1
            self.bytes_up += tlp.length
            self.ctrl_writes_up += ctrl
        else:
            self.tlps_down += 1
            self.bytes_down += tlp.length
            self.ctrl_writes_down += ctrl
        yield self.sim.timeout(self.config.latency)
        if traced:
            m = trc.metrics
            m.counter(f"pcie.tlps_{'up' if up else 'down'}").inc()
            m.counter("pcie.wire_bytes").inc(tlp.wire_bytes)
            if ctrl:
                m.counter("pcie.ctrl_writes").inc()

    def send_up(self, tlp: Tlp, bandwidth: float | None = None) -> Generator:
        """Device -> root complex.  ``bandwidth`` overrides the link rate
        (used to model the peer-to-peer read pathology)."""
        return self._send(self._up, tlp, bandwidth or self.config.bandwidth)

    def send_down(self, tlp: Tlp, bandwidth: float | None = None) -> Generator:
        """Root complex -> device."""
        return self._send(self._down, tlp, bandwidth or self.config.bandwidth)

    def serialization_time(self, payload: int) -> float:
        """Pure wire time of a payload of this size in one TLP."""
        return (payload + 24) / self.config.bandwidth
