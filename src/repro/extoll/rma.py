"""The RMA unit: requester, completer, and responder pipelines (§III-A).

* **Requester** — consumes work requests posted to the BAR requester pages,
  starts the data transfer, and emits a requester notification once the
  transfer has been started (signalling it can accept another WR).
* **Completer** — handles arriving packets: writes put payloads (and get
  responses) into registered memory via DMA and emits completer
  notifications.
* **Responder** — answers get requests by reading the requested data and
  sending it back; only active for gets.

The unit validates/translates descriptors serially at the FPGA clock but
overlaps the DMA payload movement of consecutive requests (bounded by the
NIC's DMA contexts), which is what lets the message rate scale with
connection pairs in Fig. 2.
"""

from __future__ import annotations

from typing import Dict, Optional, TYPE_CHECKING

from ..errors import RmaError
from ..network import Endpoint, Packet, PacketKind
from ..pcie import DmaConfig, DmaEngine, PciePort
from ..sim import NULL_SPAN, Simulator, Store
from .atu import Atu
from .config import ExtollConfig
from .descriptor import NotifyFlags, RmaOp, RmaWorkRequest
from .notification import Notification, NotificationQueue, RmaUnitKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .nic import ExtollNic, RmaPort


class RmaUnit:
    """The three hardware units plus their interconnecting queues."""

    def __init__(self, sim: Simulator, nic: "ExtollNic", config: ExtollConfig,
                 pcie_port: PciePort, atu: Atu, endpoint: Endpoint) -> None:
        self.sim = sim
        self.nic = nic
        self.config = config
        self.atu = atu
        self.endpoint = endpoint
        # Payload DMA pipelines several transfers; notifications use their
        # own small engine so they never stall payload movement.
        self.dma = DmaEngine(sim, pcie_port, f"{nic.name}.dma",
                             DmaConfig(contexts=4))
        self.notif_dma = DmaEngine(sim, pcie_port, f"{nic.name}.notif-dma",
                                   DmaConfig(contexts=2))
        self.req_inbox: Store = Store(sim, name=f"{nic.name}.req-inbox")
        self._seq: Dict[int, int] = {}  # per-port notification sequence
        # Stats.
        self.puts_started = 0
        self.gets_started = 0
        self.packets_handled = 0
        self.notifications_written = 0
        self.corrupt_dropped = 0
        self.batched_wrs = 0
        # Hooks invoked (plain callbacks, no simulated cost) after a put's
        # payload DMA completes; the reliability layer registers duplicate
        # detectors here.  Empty by default: one truthiness check per put.
        self.put_listeners: list = []
        # Asynchronous errors (bad NLA in a descriptor/packet, queue
        # overflows, ...) are recorded here instead of killing the unit —
        # the model's analogue of RMA error notifications.
        self.async_errors: list = []
        sim.process(self._requester_loop(), name=f"{nic.name}.requester")
        sim.process(self._receive_loop(), name=f"{nic.name}.rx")

    def _spawn_guarded(self, gen, name: str) -> None:
        def guarded():
            try:
                yield from gen
            except Exception as exc:
                self.async_errors.append(exc)

        self.sim.process(guarded(), name=name)

    # -- posting (called from the BAR write handler) -----------------------------
    def post(self, wr: RmaWorkRequest) -> None:
        self.req_inbox.put(wr)

    def post_many(self, wrs) -> None:
        """Post one batch-doorbell's worth of descriptors, in order.

        Each still pays the serial ``requester_time`` decode in
        :meth:`_requester_loop`; the batch only saves the *MMIO* cost of
        ringing them individually.
        """
        for wr in wrs:
            self.req_inbox.put(wr)
        self.batched_wrs += len(wrs)

    def _next_seq(self, port: int) -> int:
        self._seq[port] = self._seq.get(port, 0) + 1
        return self._seq[port]

    # -- notifications ------------------------------------------------------------
    def _notify(self, queue: Optional[NotificationQueue], unit: RmaUnitKind,
                port: int, size: int) -> None:
        """Spawn the DMA write of one notification record."""
        if queue is None:
            return
        record = Notification(unit, port, size, self._next_seq(port))
        slot = queue.hw_claim_slot()

        def write():
            yield from self.notif_dma.write(slot, record.encode())
            self.notifications_written += 1
            trc = self.sim.tracer
            if trc.enabled:
                trc.metrics.counter(f"rma.notifications.{unit.name.lower()}").inc()

        self.sim.process(write(), name=f"{self.nic.name}.notif")

    # -- requester ------------------------------------------------------------------
    def _requester_loop(self):
        trc = self.sim.tracer
        track = f"{self.nic.name}.requester"
        while True:
            wr = yield self.req_inbox.get()
            # The serial descriptor decode/validate stage; payload movement
            # overlaps in the spawned execute processes (dma/net spans).
            span = (trc.begin("rma", f"wr-{wr.op.name.lower()}", track=track,
                              port=wr.port, bytes=wr.size)
                    if trc.enabled else NULL_SPAN)
            yield self.sim.timeout(self.config.requester_time)
            span.end()
            port = self.nic.port_state(wr.port)
            if wr.op is RmaOp.PUT:
                self.puts_started += 1
                if trc.enabled:
                    trc.metrics.counter("rma.puts").inc()
                self._spawn_guarded(self._execute_put(wr, port),
                                    name=f"{self.nic.name}.put")
            elif wr.op is RmaOp.GET:
                self.gets_started += 1
                if trc.enabled:
                    trc.metrics.counter("rma.gets").inc()
                self._spawn_guarded(self._execute_get(wr, port),
                                    name=f"{self.nic.name}.get")
            else:  # pragma: no cover - decode() already validates
                raise RmaError(f"unknown op {wr.op}")

    def _execute_put(self, wr: RmaWorkRequest, port: "RmaPort"):
        trc = self.sim.tracer
        causal = trc.wants("causal")
        src_phys = self.atu.translate(wr.src_nla, wr.size)
        data = yield from self.dma.read(src_phys, wr.size)
        if causal:
            # The address key (dst node, dst NLA) is the causal identity both
            # endpoints can compute without any descriptor/wire change.
            trc.flow_event("txr", f"{self.nic.name}.rma",
                           addr=(wr.dst_node, wr.dst_nla), bytes=wr.size)
        yield from self.endpoint.send(Packet(
            PacketKind.RMA_PUT, self.nic.node_id, wr.dst_node,
            self.config.packet_header_bytes, data,
            meta={"dst_nla": wr.dst_nla, "port": wr.port, "flags": wr.flags},
        ))
        if causal:
            trc.flow_event("txd", f"{self.nic.name}.rma",
                           addr=(wr.dst_node, wr.dst_nla), bytes=wr.size)
        # "When the transfer has been started, a requester notification is
        # created signaling the requester is able to receive another WR."
        # Chain-posted WRs additionally carry an on_started hook (no wire
        # representation, never round-tripped through encode/decode): the
        # triggered unit counts local completions through it.
        started = getattr(wr, "on_started", None)
        if started is not None:
            started()
        if wr.flags & NotifyFlags.REQUESTER:
            self._notify(port.requester_queue, RmaUnitKind.REQUESTER,
                         wr.port, wr.size)

    def _execute_get(self, wr: RmaWorkRequest, port: "RmaPort"):
        # src_nla is remote (read there), dst_nla is local (written here).
        yield from self.endpoint.send(Packet(
            PacketKind.RMA_GET_REQUEST, self.nic.node_id, wr.dst_node,
            self.config.packet_header_bytes,
            meta={"src_nla": wr.src_nla, "dst_nla": wr.dst_nla,
                  "size": wr.size, "port": wr.port, "flags": wr.flags,
                  "origin": self.nic.node_id},
        ))
        started = getattr(wr, "on_started", None)
        if started is not None:
            started()
        if wr.flags & NotifyFlags.REQUESTER:
            self._notify(port.requester_queue, RmaUnitKind.REQUESTER,
                         wr.port, wr.size)

    # -- completer / responder ---------------------------------------------------------
    def _receive_loop(self):
        trc = self.sim.tracer
        track = f"{self.nic.name}.completer"
        while True:
            packet = yield self.endpoint.recv()
            self.packets_handled += 1
            if packet.is_corrupt:
                # Link-level CRC failure: discard like a lossy drop and let
                # the reliability layer (if any) retransmit.
                self.corrupt_dropped += 1
                if trc.enabled:
                    trc.instant("fault", "drop:crc", track=track,
                                seq=packet.seq, kind=packet.kind.value)
                    trc.metrics.counter(f"rma.{self.nic.name}.crc_drops").inc()
                continue
            span = (trc.begin("rma", f"cmpl-{packet.kind.value}", track=track,
                              seq=packet.seq, bytes=len(packet.payload))
                    if trc.enabled else NULL_SPAN)
            yield self.sim.timeout(self.config.completer_time)
            span.end()
            if packet.kind is PacketKind.RMA_PUT:
                self._spawn_guarded(self._complete_put(packet),
                                    name=f"{self.nic.name}.cmpl-put")
            elif packet.kind is PacketKind.RMA_GET_REQUEST:
                self._spawn_guarded(self._respond_get(packet),
                                    name=f"{self.nic.name}.respond")
            elif packet.kind is PacketKind.RMA_GET_RESPONSE:
                self._spawn_guarded(self._complete_get(packet),
                                    name=f"{self.nic.name}.cmpl-get")
            else:
                raise RmaError(f"EXTOLL NIC received foreign packet {packet!r}")

    def _complete_put(self, packet: Packet):
        trc = self.sim.tracer
        causal = trc.wants("causal")
        if causal:
            trc.flow_event("rxs", f"{self.nic.name}.rma",
                           addr=(self.nic.node_id, packet.meta["dst_nla"]),
                           bytes=len(packet.payload))
        dst_phys = self.atu.translate(packet.meta["dst_nla"], len(packet.payload))
        yield from self.dma.write(dst_phys, packet.payload)
        if causal:
            trc.flow_event("dlv", f"{self.nic.name}.rma",
                           addr=(self.nic.node_id, packet.meta["dst_nla"]),
                           bytes=len(packet.payload))
        if self.put_listeners:
            for listener in self.put_listeners:
                listener(packet)
        flags = packet.meta["flags"]
        if flags & NotifyFlags.COMPLETER:
            port = self.nic.port_state(packet.meta["port"])
            self._notify(port.completer_queue, RmaUnitKind.COMPLETER,
                         packet.meta["port"], len(packet.payload))

    def _respond_get(self, packet: Packet):
        """Completer reads the data locally and hands it to the responder."""
        size = packet.meta["size"]
        src_phys = self.atu.translate(packet.meta["src_nla"], size)
        data = yield from self.dma.read(src_phys, size)
        yield self.sim.timeout(self.config.responder_time)
        yield from self.endpoint.send(Packet(
            PacketKind.RMA_GET_RESPONSE, self.nic.node_id,
            packet.meta["origin"], self.config.packet_header_bytes, data,
            meta=dict(packet.meta),
        ))
        if packet.meta["flags"] & NotifyFlags.RESPONDER:
            port = self.nic.port_state(packet.meta["port"])
            self._notify(port.responder_queue, RmaUnitKind.RESPONDER,
                         packet.meta["port"], size)

    def _complete_get(self, packet: Packet):
        dst_phys = self.atu.translate(packet.meta["dst_nla"], len(packet.payload))
        yield from self.dma.write(dst_phys, packet.payload)
        if packet.meta["flags"] & NotifyFlags.COMPLETER:
            port = self.nic.port_state(packet.meta["port"])
            self._notify(port.completer_queue, RmaUnitKind.COMPLETER,
                         packet.meta["port"], len(packet.payload))
