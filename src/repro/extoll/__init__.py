"""EXTOLL NIC model: ATU/NLAs, RMA unit, notifications, host API."""

from .api import NotificationCursor, rma_post, rma_try_notification, rma_wait_notification
from .atu import Atu, NLA_BASE, NLA_PAGE
from .config import ExtollConfig, asic_config
from .descriptor import NotifyFlags, RmaOp, RmaWorkRequest, WR_BYTES
from .nic import ExtollNic, RmaPort
from .notification import (
    NOTIFICATION_BYTES,
    Notification,
    NotificationQueue,
    RmaUnitKind,
)
from .rma import RmaUnit

__all__ = [
    "Atu",
    "NLA_BASE",
    "NLA_PAGE",
    "ExtollConfig",
    "asic_config",
    "NotifyFlags",
    "RmaOp",
    "RmaWorkRequest",
    "WR_BYTES",
    "ExtollNic",
    "RmaPort",
    "Notification",
    "NotificationQueue",
    "NotificationCursor",
    "NOTIFICATION_BYTES",
    "RmaUnitKind",
    "RmaUnit",
    "rma_post",
    "rma_try_notification",
    "rma_wait_notification",
]
