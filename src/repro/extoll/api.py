"""Host-side RMA API (the `librma` equivalent, §III-B).

Thin wrappers that drive a :class:`~repro.cpu.HostThread` through the same
motions the paper's CPU code performs: post a 24-byte descriptor into a
port's requester page with one write-combined store, and consume
notifications from the kernel-space queues (read → free by zeroing → bump
the 32-bit read pointer).

The GPU-side mirror of this API lives in :mod:`repro.core.gpu_rma` — the
point of the paper is precisely how differently these two callers perform.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cpu import HostThread
from ..errors import RmaError
from ..sim import NULL_SPAN
from .descriptor import RmaWorkRequest
from .notification import Notification, NotificationQueue


@dataclass
class NotificationCursor:
    """Software-side consumer state for one notification queue."""

    queue: NotificationQueue
    read_index: int = 0

    @property
    def slot_addr(self) -> int:
        return self.queue.slot_addr(self.read_index)


def rma_post(ctx: HostThread, port_page_addr: int, wr: RmaWorkRequest):
    """Post a work request from the CPU: one 24-byte store to the BAR page
    (write-combining folds the three words into a single transaction)."""
    trc = ctx.sim.tracer
    span = (trc.begin("rma.api", "rma_post", track=ctx.track,
                      op=wr.op.name.lower(), bytes=wr.size)
            if trc.enabled else NULL_SPAN)
    yield from ctx.compute(30)  # descriptor assembly
    yield from ctx.write(port_page_addr, wr.encode())
    span.end()


def rma_wait_notification(ctx: HostThread, cursor: NotificationCursor,
                          max_polls: int | None = 2_000_000):
    """Spin on the next queue slot until its valid bit is set, then consume
    and free it.  Returns the decoded :class:`Notification`."""
    trc = ctx.sim.tracer
    # Polling layer (see gpu_rma_wait_notification): per-message span
    # volume, filtered out of the flight recorder by default.
    traced = trc.wants("rma.poll")
    span = (trc.begin("rma.poll", "wait-notification", track=ctx.track)
            if traced else NULL_SPAN)
    polls = 0
    while True:
        word0 = yield from ctx.read_u64(cursor.slot_addr)
        polls += 1
        if Notification.is_valid_word(word0):
            break
        if max_polls is not None and polls >= max_polls:
            span.end(polls=polls, error="poll budget exhausted")
            raise RmaError(f"notification wait exceeded {max_polls} polls "
                           f"on {cursor.queue.name}")
        if polls > 256:  # long wait: progressive backoff
            yield ctx.sim.timeout(min(0.2e-6 * (2 ** ((polls - 256) // 64)), 20e-6))
    raw = yield from ctx.read(cursor.slot_addr, 16)
    record = Notification.decode(raw)
    # Free: reset both words to zero, then publish the new read pointer.
    yield from ctx.write_u64(cursor.slot_addr, 0)
    yield from ctx.write_u64(cursor.slot_addr + 8, 0)
    cursor.read_index += 1
    yield from ctx.write_u32(cursor.queue.read_ptr_addr,
                             cursor.read_index % (1 << 32))
    span.end(polls=polls)
    if traced:
        trc.metrics.histogram("rma.host_notification_polls").observe(polls)
    return record


def rma_try_notification(ctx: HostThread, cursor: NotificationCursor):
    """Non-blocking variant: one poll; returns a Notification or None."""
    word0 = yield from ctx.read_u64(cursor.slot_addr)
    if not Notification.is_valid_word(word0):
        return None
    record = yield from rma_wait_notification(ctx, cursor, max_polls=1)
    return record
