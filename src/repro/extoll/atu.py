"""The Address Translation Unit and Network Logical Addresses.

EXTOLL's RMA unit addresses memory through a global space of Network Logical
Addresses (NLAs).  Registering a memory region with the ATU yields an NLA
range; put/get descriptors carry NLAs, and the NIC translates them back to
node-physical addresses on access (§III-A, §III-B).

The paper's GPU extension is a driver patch that lets the ATU translate
*MMIO/BAR1* addresses — i.e. GPU memory exposed through GPUDirect — into
NLAs as well (§III-C); here any physical range present in the node's address
map can be registered, which models exactly that patched behaviour.
"""

from __future__ import annotations

from typing import Dict

from ..errors import RegistrationError, TranslationError
from ..memory import AddressRange, TranslationTable

# NLAs live in their own space; this base keeps them visibly distinct from
# physical addresses in traces and dumps.
NLA_BASE = 0x6000_0000_0000
NLA_PAGE = 4096


class Atu:
    """Per-NIC registration table: NLA range <-> physical range."""

    def __init__(self, name: str = "atu") -> None:
        self.name = name
        self._table = TranslationTable(name)
        self._next_nla = NLA_BASE
        self._by_base: Dict[int, AddressRange] = {}
        self.registrations = 0

    def register(self, phys: AddressRange) -> AddressRange:
        """Register a physical range; returns its NLA window.

        Ranges are rounded up to NLA pages, as the real ATU is page-granular.
        """
        if phys.size <= 0:
            raise RegistrationError(f"cannot register empty range {phys}")
        pages = (phys.size + NLA_PAGE - 1) // NLA_PAGE
        nla = AddressRange(self._next_nla, pages * NLA_PAGE)
        self._next_nla += (pages + 1) * NLA_PAGE  # guard page between windows
        # Only phys.size bytes are backed; the tail of the last page is not
        # accessible (translate() bounds to the true physical size).
        self._table.map(AddressRange(nla.base, phys.size), phys.base,
                        label=f"nla->{phys}")
        self._by_base[nla.base] = phys
        self.registrations += 1
        return AddressRange(nla.base, phys.size)

    def deregister(self, nla: AddressRange) -> None:
        phys = self._by_base.pop(nla.base, None)
        if phys is None:
            raise RegistrationError(f"no registration at NLA {nla}")
        self._table.unmap(AddressRange(nla.base, phys.size))

    def translate(self, nla: int, length: int = 1) -> int:
        """NLA -> node-physical address; raises TranslationError on a miss,
        which the hardware would surface as an RMA error notification."""
        return self._table.translate(nla, length)

    def is_registered(self, nla: int, length: int = 1) -> bool:
        try:
            self._table.translate(nla, length)
            return True
        except TranslationError:
            return False
