"""The EXTOLL notification system.

Hardware units (requester / completer / responder) report progress by writing
128-bit notification records into ring buffers that the kernel driver
pre-allocates in *host* memory at load time (§III-B, §VI).  That placement is
the paper's central EXTOLL finding: software polling a notification queue
from the GPU pays a PCIe round trip per poll.

Record layout (two little-endian u64 words):

* word 0: | valid:1 | unit:3 | port:8 | size:36 | reserved |
* word 1: sequence number

Software consumes a record by reading it, zeroing it ("freeing", two 64-bit
stores) and bumping the queue's 32-bit read pointer, which also lives in the
queue structure in host memory — the exact store mix Table I attributes to
system memory.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import NotificationOverflowError, RmaError
from ..memory import AddressRange, Memory

NOTIFICATION_BYTES = 16
READ_PTR_BYTES = 4


class RmaUnitKind(enum.IntEnum):
    REQUESTER = 1
    COMPLETER = 2
    RESPONDER = 3


@dataclass(frozen=True)
class Notification:
    unit: RmaUnitKind
    port: int
    size: int
    seq: int

    def encode(self) -> bytes:
        word0 = (1
                 | ((int(self.unit) & 0x7) << 1)
                 | ((self.port & 0xFF) << 4)
                 | ((self.size & ((1 << 36) - 1)) << 12))
        return word0.to_bytes(8, "little") + self.seq.to_bytes(8, "little")

    @classmethod
    def decode(cls, raw: bytes) -> "Notification":
        if len(raw) != NOTIFICATION_BYTES:
            raise RmaError(f"notification must be {NOTIFICATION_BYTES} bytes")
        word0 = int.from_bytes(raw[0:8], "little")
        if not word0 & 1:
            raise RmaError("decoding an invalid (freed) notification")
        return cls(
            unit=RmaUnitKind((word0 >> 1) & 0x7),
            port=(word0 >> 4) & 0xFF,
            size=(word0 >> 12) & ((1 << 36) - 1),
            seq=int.from_bytes(raw[8:16], "little"),
        )

    @staticmethod
    def is_valid_word(word0: int) -> bool:
        return bool(word0 & 1)


class NotificationQueue:
    """One ring of 16-byte notification slots plus its 32-bit read pointer,
    laid out contiguously in (host) memory:

        [slot 0][slot 1]...[slot N-1][read_ptr:u32]

    The producing hardware keeps the write pointer and a *shadow* of the read
    pointer; when the shadow suggests the ring is full it re-reads the real
    read pointer from memory before declaring overflow.
    """

    def __init__(self, name: str, backing: Memory, base: int, entries: int,
                 sim=None) -> None:
        if entries < 2:
            raise RmaError("queue needs at least 2 entries")
        self.name = name
        self.backing = backing
        self.base = base
        self.entries = entries
        self.sim = sim              # optional: enables claim-slot trace marks
        self.write_ptr = 0          # hardware-private
        self.shadow_read_ptr = 0    # hardware-private cache of the real rp
        backing.fill(base, self.footprint_bytes(entries), 0)

    @staticmethod
    def footprint_bytes(entries: int) -> int:
        return entries * NOTIFICATION_BYTES + READ_PTR_BYTES

    @property
    def range(self) -> AddressRange:
        return AddressRange(self.base, self.footprint_bytes(self.entries))

    def slot_addr(self, index: int) -> int:
        return self.base + (index % self.entries) * NOTIFICATION_BYTES

    @property
    def read_ptr_addr(self) -> int:
        return self.base + self.entries * NOTIFICATION_BYTES

    # -- hardware side ----------------------------------------------------------
    def hw_ring_full(self) -> bool:
        return self.write_ptr - self.shadow_read_ptr >= self.entries

    def hw_refresh_read_ptr(self) -> None:
        """Re-read the software read pointer from memory (functionally; the
        producing unit pays the DMA-read time separately)."""
        self.shadow_read_ptr = self.backing.read_u32(self.read_ptr_addr)

    def hw_claim_slot(self) -> int:
        """Address to write the next notification to; raises on overflow —
        'if notifications are used they have to be consumed and freed before
        the queue overflows' (§III-A)."""
        if self.hw_ring_full():
            self.hw_refresh_read_ptr()
            if self.hw_ring_full():
                raise NotificationOverflowError(
                    f"{self.name}: ring overflow at wp={self.write_ptr}, "
                    f"rp={self.shadow_read_ptr}"
                )
        addr = self.slot_addr(self.write_ptr)
        # Per-notification event: the polling/notification layer, filtered
        # out of the telemetry flight recorder by default.
        if self.sim is not None and self.sim.tracer.wants("rma.poll"):
            self.sim.tracer.instant("rma.poll", "notif-claim", track=self.name,
                                    slot=self.write_ptr % self.entries)
        self.write_ptr += 1
        return addr
