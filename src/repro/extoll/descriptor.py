"""RMA work-request descriptors — the 192-bit commands written to the BAR.

Layout (three little-endian 64-bit words, matching the "3x64 bit values"
the paper counts as exactly 3 system-memory writes per posted WR, §V-A3):

* word 0: | op:4 | port:8 | dst_node:8 | flags:8 | size:36 |
* word 1: source NLA
* word 2: destination NLA — the write of this word triggers execution.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import RmaError

WR_BYTES = 24


class RmaOp(enum.IntEnum):
    PUT = 1
    GET = 2


class NotifyFlags(enum.IntFlag):
    NONE = 0
    REQUESTER = 1   # notification at the origin when the WR is accepted
    COMPLETER = 2   # notification at the data's destination side
    RESPONDER = 4   # notification at the responder (get only)


_SIZE_BITS = 36
_MAX_SIZE = (1 << _SIZE_BITS) - 1


@dataclass(frozen=True)
class RmaWorkRequest:
    op: RmaOp
    port: int           # origin port (selects requester page + queues)
    dst_node: int       # destination node id
    src_nla: int        # data source (origin-local for put, remote for get)
    dst_nla: int        # data destination
    size: int
    flags: NotifyFlags = NotifyFlags.REQUESTER | NotifyFlags.COMPLETER

    def __post_init__(self) -> None:
        if self.size <= 0 or self.size > _MAX_SIZE:
            raise RmaError(f"WR size out of range: {self.size}")
        if not 0 <= self.port < 256:
            raise RmaError(f"WR port out of range: {self.port}")
        if not 0 <= self.dst_node < 256:
            raise RmaError(f"WR dst_node out of range: {self.dst_node}")

    # -- wire format ------------------------------------------------------------
    def encode(self) -> bytes:
        word0 = (
            (int(self.op) & 0xF)
            | ((self.port & 0xFF) << 4)
            | ((self.dst_node & 0xFF) << 12)
            | ((int(self.flags) & 0xFF) << 20)
            | ((self.size & _MAX_SIZE) << 28)
        )
        return (word0.to_bytes(8, "little")
                + self.src_nla.to_bytes(8, "little")
                + self.dst_nla.to_bytes(8, "little"))

    @classmethod
    def decode(cls, raw: bytes) -> "RmaWorkRequest":
        if len(raw) != WR_BYTES:
            raise RmaError(f"descriptor must be {WR_BYTES} bytes, got {len(raw)}")
        word0 = int.from_bytes(raw[0:8], "little")
        op_val = word0 & 0xF
        try:
            op = RmaOp(op_val)
        except ValueError:
            raise RmaError(f"bad RMA opcode {op_val}") from None
        return cls(
            op=op,
            port=(word0 >> 4) & 0xFF,
            dst_node=(word0 >> 12) & 0xFF,
            flags=NotifyFlags((word0 >> 20) & 0xFF),
            src_nla=int.from_bytes(raw[8:16], "little"),
            dst_nla=int.from_bytes(raw[16:24], "little"),
            size=(word0 >> 28) & _MAX_SIZE,
        )

    def words(self) -> tuple[int, int, int]:
        """The three 64-bit words a GPU thread stores to the BAR page."""
        raw = self.encode()
        return (int.from_bytes(raw[0:8], "little"),
                int.from_bytes(raw[8:16], "little"),
                int.from_bytes(raw[16:24], "little"))
