"""EXTOLL NIC parameters.

The paper's cards are FPGA-based Galibier boards: 157 MHz core clock and a
64-bit internal datapath (§V) — the authors expect ~700 MHz / 128-bit for an
ASIC.  Unit costs below are cycle counts at that clock, so the ASIC ablation
is a one-line config change.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError
from ..network import NetLinkConfig
from ..units import GB_PER_S, KIB, NS


@dataclass(frozen=True)
class ExtollConfig:
    name: str = "galibier-fpga"
    clock_hz: float = 157e6
    datapath_bytes: int = 8            # 64-bit internal datapath

    # Unit pipeline costs (cycles at clock_hz) per descriptor/packet.  The
    # 64-bit FPGA datapath needs tens of cycles to ingest and schedule a
    # 192-bit WR; this serial stage caps the card at ~2M WRs/s (Fig. 2 top).
    requester_cycles: int = 80
    completer_cycles: int = 80
    responder_cycles: int = 40
    # Counter-doorbell decode + threshold sweep of the triggered unit: far
    # cheaper than a WR decode because the payload is one 64-bit word.
    trigger_cycles: int = 24

    # Wire format.
    wr_bytes: int = 24                 # 192-bit work request (§V-A3)
    notification_bytes: int = 16       # 128-bit notification
    packet_header_bytes: int = 40

    # Link: 4 lanes of the FPGA SerDes; effective payload rate ~0.95 GB/s,
    # which caps the measured ~800 MB/s streaming bandwidth of Fig. 1b.
    link: NetLinkConfig = field(default_factory=lambda: NetLinkConfig(
        bandwidth=0.95 * GB_PER_S, latency=480 * NS))

    # BAR layout.
    bar_size: int = 1024 * KIB
    requester_page_offset: int = 64 * KIB
    requester_page_size: int = 4 * KIB
    max_ports: int = 64

    # Notification queues (allocated in kernel space at driver load, §III-B).
    notification_queue_entries: int = 256

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ConfigError("clock must be positive")
        if self.wr_bytes != 24:
            raise ConfigError("the RMA descriptor format is fixed at 24 bytes")
        if self.notification_bytes != 16:
            raise ConfigError("the notification format is fixed at 16 bytes")
        if self.max_ports < 1:
            raise ConfigError("need at least one port")
        if self.notification_queue_entries < 2:
            raise ConfigError("notification queues need >= 2 entries")
        if self.requester_page_offset + self.max_ports * self.requester_page_size \
                > self.bar_size:
            raise ConfigError("BAR too small for the requester pages")

    def cycles(self, n: int) -> float:
        return n / self.clock_hz

    @property
    def batch_doorbell_offset(self) -> int:
        """Offset inside a requester page of the batch doorbell word.

        The engine's coalesced path stages several 24-byte descriptors at
        the front of the page and then writes the descriptor *count* to
        this final 64-bit word; the NIC decodes and posts them all from
        one MMIO ring (one control TLP instead of one per descriptor).
        """
        return self.requester_page_size - 8

    @property
    def trigger_doorbell_offset(self) -> int:
        """Offset inside a requester page of the counter-doorbell word.

        A kernel (or any agent with the page mapped) ticks a triggered-
        operations counter with ONE posted 8-byte store here, encoded as
        ``(counter_id << 16) | amount`` — the cheapest possible "go" signal
        a GPU can give the NIC.  Sits just below the batch doorbell so both
        control words stay clear of the descriptor staging region.
        """
        return self.requester_page_size - 16

    @property
    def batch_region_offset(self) -> int:
        """Start of the batch staging region inside a requester page.

        Offsets below :data:`~repro.extoll.descriptor.WR_BYTES` keep the
        classic trigger-on-final-word semantics; staging batched
        descriptors above this offset cannot fire it by accident.
        """
        return 64

    @property
    def max_batch_descriptors(self) -> int:
        """How many descriptors fit between the staging region and the
        lowest control word (the trigger doorbell)."""
        return ((self.trigger_doorbell_offset - self.batch_region_offset)
                // self.wr_bytes)

    @property
    def requester_time(self) -> float:
        return self.cycles(self.requester_cycles)

    @property
    def trigger_time(self) -> float:
        return self.cycles(self.trigger_cycles)

    @property
    def completer_time(self) -> float:
        return self.cycles(self.completer_cycles)

    @property
    def responder_time(self) -> float:
        return self.cycles(self.responder_cycles)


def asic_config() -> ExtollConfig:
    """The projected ASIC variant the paper mentions (~700 MHz, 128-bit)."""
    return ExtollConfig(
        name="extoll-asic",
        clock_hz=700e6,
        datapath_bytes=16,
        link=NetLinkConfig(bandwidth=5.5 * GB_PER_S, latency=450 * NS),
    )
