"""The EXTOLL NIC: BAR, ports, driver-level resource management.

Construction/wiring follows the driver flow the paper describes:

1. at *driver load*, notification-queue storage is pre-allocated in kernel
   (host) memory (§III-B / §VI — the placement GPU polling suffers from),
2. ``open_port()`` assigns a requester page in the BAR plus pre-allocated
   notification queues to the new port,
3. ``register_memory()`` runs physical ranges through the ATU, yielding the
   NLAs that put/get descriptors carry — including GPU BAR1 ranges, which is
   the GPUDirect driver patch (§III-C).

Writing a complete 24-byte descriptor into a port's requester page hands it
to the RMA unit; the write of the final 64-bit word triggers execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import RmaError
from ..memory import AddressRange, Allocator, MmioWindow
from ..network import Endpoint
from ..pcie import PcieFabric, PcieLinkConfig, PciePort
from ..sim import Simulator
from .atu import Atu
from .config import ExtollConfig
from .descriptor import WR_BYTES, RmaWorkRequest
from .notification import NotificationQueue
from .rma import RmaUnit


@dataclass
class RmaPort:
    """An opened RMA port: its BAR page and notification queues."""

    port_id: int
    page_addr: int                       # node-physical address of the page
    requester_queue: NotificationQueue
    completer_queue: NotificationQueue
    responder_queue: NotificationQueue

    @property
    def page_range(self) -> AddressRange:
        return AddressRange(self.page_addr, WR_BYTES)


class ExtollNic:
    """One EXTOLL card in a node."""

    def __init__(self, sim: Simulator, node_id: int, name: str = "",
                 config: Optional[ExtollConfig] = None) -> None:
        self.sim = sim
        self.node_id = node_id
        self.name = name or f"extoll{node_id}"
        self.config = config or ExtollConfig()
        self.atu = Atu(f"{self.name}.atu")
        self.bar: Optional[MmioWindow] = None
        self.rma: Optional[RmaUnit] = None
        self._ports: Dict[int, RmaPort] = {}
        self._next_port = 0
        self._kernel_alloc: Optional[Allocator] = None
        # Batched-doorbell stats (engine's MMIO-coalescing path).
        self.batch_doorbells = 0
        self.batch_descriptors = 0
        # Single descriptors pushed through the BAR (host-assist control).
        self.wr_posts = 0
        # Counter-doorbell stats + the triggered-operations unit, installed
        # by repro.triggered.TriggeredUnit when a model opts in.
        self.trigger_doorbells = 0
        self.triggered = None

    # -- wiring (driver load) ------------------------------------------------------
    def attach(self, fabric: PcieFabric, bar_base: int,
               kernel_alloc: Allocator, endpoint: Endpoint,
               link_config: Optional[PcieLinkConfig] = None) -> PciePort:
        """Install the NIC into a node: map the BAR, start the RMA unit, and
        reserve kernel-space notification storage."""
        if self.bar is not None:
            raise RmaError(f"{self.name} is already attached")
        self.bar = MmioWindow(f"{self.name}.bar", bar_base, self.config.bar_size)
        fabric.address_map.add(self.bar)
        pcie_port = fabric.attach(self.name, link_config)
        fabric.claim(pcie_port, self.bar)
        self._kernel_alloc = kernel_alloc
        self.rma = RmaUnit(self.sim, self, self.config, pcie_port, self.atu,
                           endpoint)
        return pcie_port

    def _require_attached(self) -> None:
        if self.bar is None or self.rma is None or self._kernel_alloc is None:
            raise RmaError(f"{self.name} is not attached to a node")

    # -- ports ---------------------------------------------------------------------
    def open_port(self, port_id: Optional[int] = None,
                  notification_alloc: Optional[Allocator] = None) -> RmaPort:
        """Open an RMA port: assign a BAR requester page and notification
        queues.  ``port_id`` may be pinned so both ends of a connection use
        matching ids (completer notifications are routed by port id).

        ``notification_alloc`` overrides where the port's notification
        queues live.  The *stock* driver pins them in kernel host memory at
        load time (§III-B) — the placement §VI criticizes.  Passing a GPU
        allocator here models the paper's proposed future API in which
        notification structures can live in device memory.
        """
        self._require_attached()
        if port_id is None:
            while self._next_port in self._ports:
                self._next_port += 1
            port_id = self._next_port
        if port_id in self._ports:
            raise RmaError(f"port {port_id} already open on {self.name}")
        if not 0 <= port_id < self.config.max_ports:
            raise RmaError(f"port id {port_id} out of range")

        page_addr = (self.bar.range.base + self.config.requester_page_offset
                     + port_id * self.config.requester_page_size)
        alloc = notification_alloc or self._kernel_alloc
        queues = []
        for kind in ("req", "cmpl", "resp"):
            entries = self.config.notification_queue_entries
            footprint = NotificationQueue.footprint_bytes(entries)
            rng = alloc.alloc(footprint)
            queues.append(NotificationQueue(
                f"{self.name}.p{port_id}.{kind}", alloc.memory,
                rng.base, entries, sim=self.sim))
        port = RmaPort(port_id, page_addr, *queues)
        self._ports[port_id] = port

        page_off = page_addr - self.bar.range.base
        self.bar.on_write(page_off, self.config.requester_page_size,
                          self._make_page_handler(page_off))
        return port

    def _make_page_handler(self, page_off: int):
        cfg = self.config

        def handler(rel_off: int, data: bytes) -> None:
            trc = self.sim.tracer
            if rel_off >= cfg.batch_doorbell_offset:
                # Batch doorbell: the page's staging region holds `count`
                # descriptors; one control write posts them all (the
                # engine's MMIO coalescing — one TLP instead of N).
                count = int.from_bytes(self.bar.store.read(
                    page_off + cfg.batch_doorbell_offset, 8), "little")
                if not 1 <= count <= cfg.max_batch_descriptors:
                    raise RmaError(
                        f"{self.name}: batch doorbell count {count} outside "
                        f"1..{cfg.max_batch_descriptors}")
                base = page_off + cfg.batch_region_offset
                wrs = [RmaWorkRequest.decode(
                           self.bar.store.read(base + i * WR_BYTES, WR_BYTES))
                       for i in range(count)]
                if trc.enabled:
                    trc.instant("rma", "batch-doorbell",
                                track=f"{self.name}.bar", descriptors=count)
                    trc.metrics.counter("rma.batch_doorbells").inc()
                    trc.metrics.counter("rma.wr_triggers").inc(count)
                self.batch_doorbells += 1
                self.batch_descriptors += count
                self.rma.post_many(wrs)
            elif rel_off >= cfg.trigger_doorbell_offset:
                # Counter doorbell: one 8-byte store ticks a triggered-
                # operations counter — (counter_id << 16) | amount.  The
                # triggered unit pays its decode stage and fires any chains
                # whose thresholds the tick crosses.
                word = int.from_bytes(self.bar.store.read(
                    page_off + cfg.trigger_doorbell_offset, 8), "little")
                if self.triggered is None:
                    raise RmaError(
                        f"{self.name}: counter doorbell rung but no "
                        f"triggered unit is attached")
                if trc.enabled:
                    trc.metrics.counter("rma.trigger_doorbells").inc()
                self.trigger_doorbells += 1
                self.triggered.on_doorbell(word >> 16, word & 0xFFFF)
            elif rel_off < WR_BYTES <= rel_off + len(data):
                # The descriptor is executed when its final word arrives —
                # whether posted as one 24-byte burst (CPU,
                # write-combining), one wide store, or three 64-bit stores
                # (a GPU thread).  Writes into the batch staging region
                # above WR_BYTES never trigger this path.
                raw = self.bar.store.read(page_off, WR_BYTES)
                wr = RmaWorkRequest.decode(raw)
                if trc.enabled:
                    trc.instant("rma", "wr-trigger", track=f"{self.name}.bar",
                                port=wr.port, op=wr.op.name.lower(),
                                bytes=wr.size)
                    trc.metrics.counter("rma.wr_triggers").inc()
                self.wr_posts += 1
                self.rma.post(wr)
        return handler

    def port_state(self, port_id: int) -> RmaPort:
        try:
            return self._ports[port_id]
        except KeyError:
            raise RmaError(
                f"{self.name}: packet/descriptor for unopened port {port_id}"
            ) from None

    # -- registration -----------------------------------------------------------------
    def register_memory(self, phys: AddressRange) -> AddressRange:
        """ATU registration; works for host DRAM and (patched driver) GPU
        BAR1 ranges alike.  Returns the NLA window."""
        self._require_attached()
        return self.atu.register(phys)

    def deregister_memory(self, nla: AddressRange) -> None:
        self.atu.deregister(nla)
