"""The flight recorder: always-on, bounded post-mortem context.

A :class:`FlightRecorder` IS a :class:`~repro.obs.SpanTracer` — install it
as ``sim.tracer`` and every instrumented model reports to it — but it
retains only the most recent ``capacity`` spans/instants in rings
(``deque(maxlen=...)``), so memory stays bounded no matter how long the
run is.  Aggregates are NOT bounded: the metrics registry keeps exact
counters and histograms for the whole run (that is what the sampler and
the SLO monitors poll), and completed span durations are folded into
``span.{category}.{name}`` histograms as they end — live tail-latency
distributions without retaining the spans themselves.

When something goes wrong the recorder **trips**: a trigger instant
(``retry-exhausted`` by default — any fault-category name can be armed),
or an explicit :meth:`trip` call from an SLO monitor or an exception
handler.  Tripping snapshots the rings into a *dump* (a JSON-safe dict of
the last-N spans/instants plus counters) and hands it to the ``on_trip``
callbacks — the black box readout for the moments leading up to the
failure, at ring-buffer cost instead of full-trace cost.

Because the retained spans are literally the tail of what a full
:class:`SpanTracer` would have recorded for the same seed, a dump
reconciles exactly against a full trace of the same run — the
``monitor --scenario faults`` CLI checks this within 1%.
"""

from __future__ import annotations

from collections import deque
from dataclasses import asdict
from typing import Callable, Iterable, List, Optional, TYPE_CHECKING

from ..obs.tracer import FlowRecord, InstantRecord, SpanRecord, SpanTracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.engine import Simulator

#: Instant names that trip the recorder out of the box.
DEFAULT_TRIGGERS = ("retry-exhausted",)

#: What the black box records by default: the API, phase, fault, wire and
#: kernel layers — every category EXCEPT the microscopic ones whose span
#: volume would both churn the rings uselessly and slow the run: per-TLP
#: ``pcie``, per-access ``gpu.sysmem``, per-descriptor ``dma``, and the
#: per-message polling layer (``gpu.spin``, ``rma.poll``, ``ib.poll``).
#: Their hot sites gate on :meth:`~repro.sim.trace.Tracer.wants`, so
#: filtering skips even the argument construction.  Pass
#: ``categories=None`` for a full-fidelity recorder.
DEFAULT_CATEGORIES = ("bench", "causal", "collective", "fault", "gpu.block",
                      "gpu.kernel", "ib", "ib.api", "mpi", "net", "phase",
                      "rel", "rma", "rma.api", "trig", "workload")


class FlightRecorder(SpanTracer):
    """A SpanTracer whose record lists are rings, plus trip-on-fault."""

    def __init__(self, sim: Optional["Simulator"] = None,
                 capacity: int = 512,
                 triggers: Iterable[str] = DEFAULT_TRIGGERS,
                 categories: Optional[Iterable[str]] = DEFAULT_CATEGORIES,
                 ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        super().__init__(sim, categories=categories, sink=self._observe)
        self.capacity = capacity
        # Rebind the storage to rings: appends beyond capacity evict the
        # oldest record instead of growing (SpanTracer only ever appends
        # and iterates, so the swap is safe).
        self.spans = deque(maxlen=capacity)
        self.instants = deque(maxlen=capacity)
        self.records = deque(maxlen=capacity)
        self.flows = deque(maxlen=capacity)
        self.triggers = set(triggers)
        self.trips: List[dict] = []
        #: Called as ``cb(reason, dump)`` on every trip.
        self.on_trip: List[Callable[[str, dict], None]] = []

    # -- sink: aggregate + trigger ---------------------------------------------------
    def _observe(self, record) -> None:
        if isinstance(record, SpanRecord):
            self.metrics.histogram(
                f"span.{record.category}.{record.name}").observe(
                    record.duration)
        elif isinstance(record, InstantRecord):
            if record.name in self.triggers:
                self.trip(f"{record.category}/{record.name}",
                          detail=dict(record.attrs))
        elif isinstance(record, FlowRecord):
            self.metrics.counter(f"flow.{record.kind}").inc()

    # -- tripping ----------------------------------------------------------------
    def trip(self, reason: str, detail: Optional[dict] = None) -> dict:
        """Snapshot the rings and notify ``on_trip``; returns the dump."""
        dump = self.dump(reason, detail)
        self.trips.append({"time": dump["time"], "reason": reason})
        for cb in self.on_trip:
            cb(reason, dump)
        return dump

    def dump(self, reason: str = "manual",
             detail: Optional[dict] = None) -> dict:
        """JSON-safe snapshot of everything the recorder holds right now."""
        return {
            "reason": reason,
            "detail": detail or {},
            "time": self.now(),
            "capacity": self.capacity,
            "spans": [asdict(s) for s in self.spans],
            "instants": [asdict(i) for i in self.instants],
            "flows": [asdict(f) for f in self.flows],
            "open_spans": [{"category": s.category, "name": s.name,
                            "track": s.track, "begin": s.begin}
                           for s in self.open_spans()],
            "counters": self.metrics.counter_values(),
        }

    @property
    def tripped(self) -> bool:
        return bool(self.trips)
