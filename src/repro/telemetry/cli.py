"""``python -m repro monitor`` — run a scenario under live telemetry.

Any of the repo's scenarios (``pingpong``/``rate``/``engine``/
``collectives``/``faults``) runs with a :class:`TelemetryPlane` armed:
the sampler ticks on the event loop, SLO monitors judge every window, and
the flight recorder stands by to dump on faults or breaches.  At the end
the CLI prints the series summary and the SLO verdict table; ``--out``
additionally writes the JSON time series, the Prometheus text snapshot,
and every flight-recorder dump.

Proof obligations, runnable from CI:

* ``--verify`` runs the scenario twice — bare and instrumented — and
  asserts the measured results are IDENTICAL (the sampler observes, it
  never perturbs).
* ``--force-breach`` arms an unsatisfiable objective so the first sample
  window breaches, trips the recorder, and produces a dump artifact.
* the ``faults`` scenario replays itself under a full
  :class:`~repro.obs.SpanTracer` and reconciles the flight-recorder dump's
  spans against the full trace (every retained span must appear there,
  within a 1% mismatch allowance).

Exit status: 0 on success, 1 on SLO breach (so pipelines can gate),
2 on a verification failure.
"""

from __future__ import annotations

import argparse
import json
import os
from typing import List, Optional, Tuple

from ..errors import ReproError
from ..sim import Simulator
from .export import (render_series_table, write_flight_record,
                     write_prometheus, write_timeseries)
from .plane import TelemetryPlane
from .slo import Objective

_BUF_BYTES = 64 * 1024

#: Conservative default objectives per scenario — thresholds sit well
#: outside the model's nominal envelope so a healthy run passes, and the
#: budget absorbs warm-up windows.
_PRESETS = {
    "pingpong": [
        Objective("put tail latency", "span.rma.wr-put", "p99", "<",
                  10e-6, unit="s", budget=0.2),
    ],
    "rate": [
        Objective("sustained put rate", "rma.puts", "rate", ">=",
                  1e5, unit="put/s", budget=0.25),
    ],
    "engine": [
        Objective("engine message rate", "engine.messages", "rate", ">=",
                  5e5, unit="msg/s", budget=0.25),
        Objective("doorbell amplification", "engine.doorbells", "rate", "<",
                  1e8, unit="mmio/s", budget=0.25),
        Objective("put tail latency", "span.rma.wr-put", "p99", "<",
                  10e-6, unit="s", budget=0.2),
    ],
    "collectives": [
        Objective("collective step tail", "span.phase.all-reduce", "p99",
                  "<", 1e-3, unit="s", budget=0.2),
    ],
    "faults": [
        Objective("no retransmissions", "rel.retransmits", "total", "<=",
                  0.0, unit="retx", budget=0.0),
        Objective("no link drops", "faults.drops", "total", "<=",
                  0.0, unit="drops", budget=0.0),
    ],
    "fabrics": [
        # Generous credits on the default run: stalls should be rare.
        # --credits 1 floods this objective on purpose (breach demo).
        Objective("fabric stall rate", "fabric.stalls", "rate", "<",
                  1e6, unit="stall/s", budget=0.25),
        Objective("fabric moves bytes", "fabric.bytes", "rate", ">",
                  0.0, unit="B/s", budget=0.25),
    ],
}

_FORCE_BREACH = Objective("forced breach (sim always makes progress)",
                          "sim.events", "total", "<=", 0.0, budget=0.0)


def _build_plane(args, sim: Simulator, scenario: str) -> TelemetryPlane:
    objectives: List[Objective] = []
    if not args.no_presets:
        objectives.extend(_PRESETS.get(scenario, ()))
    for spec in args.slo or ():
        objectives.append(Objective.parse(spec))
    if args.force_breach:
        objectives.append(_FORCE_BREACH)
    return TelemetryPlane(sim, interval=args.interval,
                          capacity=args.capacity, objectives=objectives,
                          recorder_capacity=args.recorder_capacity)


# -- scenario runners -----------------------------------------------------------
# Each returns (headline, details) and leaves the plane (when given) with a
# finished sampling history.  All model wiring happens AFTER the plane is
# installed so every span/counter lands in the recorder.

def _run_pingpong(args, sim: Simulator, plane: Optional[TelemetryPlane],
                  ) -> Tuple[str, dict]:
    from ..cluster import build_extoll_cluster
    from ..core.modes import ExtollMode
    from ..core.pingpong import run_extoll_pingpong
    from ..core.setup import setup_extoll_connection
    cluster = build_extoll_cluster(sim=sim)
    conn = setup_extoll_connection(cluster, max(_BUF_BYTES, args.size))
    if plane is not None:
        plane.watch_fabric(cluster.net)
        plane.start()
    point = run_extoll_pingpong(cluster, conn, ExtollMode.DIRECT, args.size,
                                iterations=args.iterations, warmup=args.warmup)
    return (f"pingpong dev2dev-direct {args.size}B: "
            f"{point.latency_us:.3f}us half round trip",
            {"latency": point.latency, "post_time": point.post_time,
             "poll_time": point.poll_time})


def _run_rate(args, sim: Simulator, plane: Optional[TelemetryPlane],
              ) -> Tuple[str, dict]:
    from ..cluster import build_extoll_cluster
    from ..core.message_rate import run_extoll_message_rate
    from ..core.modes import RateMethod
    from ..core.setup import setup_extoll_connections
    cluster = build_extoll_cluster(sim=sim)
    conns = setup_extoll_connections(cluster, _BUF_BYTES, args.connections)
    if plane is not None:
        plane.watch_fabric(cluster.net)
        plane.start()
    point = run_extoll_message_rate(cluster, conns,
                                    RateMethod.HOST_CONTROLLED,
                                    per_connection=args.per_connection)
    return (f"rate hostControlled x{args.connections}: "
            f"{point.messages_per_s / 1e6:.3f} M msg/s",
            {"messages_per_s": point.messages_per_s,
             "elapsed": point.elapsed})


def _run_engine(args, sim: Simulator, plane: Optional[TelemetryPlane],
                ) -> Tuple[str, dict]:
    from ..cluster import build_extoll_cluster
    from ..core.setup import setup_extoll_connections
    from ..engine.engine import (EngineConfig, EngineStats,
                                 run_engine_message_rate)
    cluster = build_extoll_cluster(sim=sim)
    conns = setup_extoll_connections(cluster, _BUF_BYTES, args.connections)
    stats = EngineStats()
    if plane is not None:
        plane.watch_stats("engine", stats)
        plane.watch_fabric(cluster.net)
        plane.start()
    point, stats = run_engine_message_rate(
        cluster, conns, EngineConfig.all_on(),
        per_connection=args.per_connection, stats=stats)
    return (f"engine all-on x{args.connections}: "
            f"{point.messages_per_s / 1e6:.3f} M msg/s "
            f"({stats.wrs} WRs, {stats.doorbells} doorbells)",
            {"messages_per_s": point.messages_per_s, "wrs": stats.wrs,
             "doorbells": stats.doorbells})


def _run_collectives(args, sim: Simulator, plane: Optional[TelemetryPlane],
                     ) -> Tuple[str, dict]:
    from ..collectives.bench import build_communicator, run_collective
    from ..collectives.comm import CollectiveMode
    cluster, comm = build_communicator(args.nodes, args.size,
                                       CollectiveMode.POLL_ON_GPU, sim=sim)
    if plane is not None:
        plane.watch_fabric(cluster.net)
        plane.start()
    result = run_collective(cluster, comm, "all-reduce", args.size,
                            iterations=args.iterations, warmup=args.warmup)
    return (f"all-reduce N={args.nodes} {args.size}B: "
            f"{result.point.latency * 1e6:.3f}us/op "
            f"({'OK' if result.correct else 'WRONG RESULT'})",
            {"latency": result.point.latency, "correct": result.correct})


def _run_faults(args, sim: Simulator, plane: Optional[TelemetryPlane],
                ) -> Tuple[str, dict]:
    from ..analysis.faults import run_chaos_point
    from ..collectives.comm import CollectiveMode

    def on_setup(_sim, cluster, comm, injector) -> None:
        if plane is not None:
            plane.watch_stats("faults", injector)
            plane.watch_stats("rel", comm)
            plane.watch_fabric(cluster.net)
            plane.start()

    point, _comm, _injector = run_chaos_point(
        CollectiveMode.POLL_ON_GPU, args.size, args.loss,
        corrupt=args.loss / 2, nodes=args.nodes,
        iterations=args.iterations, warmup=args.warmup,
        sim=sim, on_setup=on_setup)
    return (f"all-reduce under loss={args.loss:g}: "
            f"{point.latency_us:.3f}us/op, {point.retransmits} retx, "
            f"{point.drops} drops "
            f"({'OK' if point.correct else 'WRONG RESULT'})",
            {"latency": point.latency, "retransmits": point.retransmits,
             "drops": point.drops, "correct": point.correct})


def _run_fabrics(args, sim: Simulator, plane: Optional[TelemetryPlane],
                 ) -> Tuple[str, dict]:
    from ..fabrics import build_topology, instantiate
    from ..fabrics.collective import run_collective as run_fabric_collective
    from ..fabrics.topology import FabricConfig
    # The fat-tree builder needs a power-of-two N >= 8; the generic
    # --nodes default (and the --quick cap) sit below that.
    topo = build_topology("fat-tree", max(8, args.nodes))
    instance = instantiate(sim, topo,
                           FabricConfig(credits=args.credits))
    if plane is not None:
        plane.watch_fabrics(instance)
        plane.start()
    result = run_fabric_collective(instance, "rh",
                                   elems_per_rank=args.size // 8,
                                   iterations=args.iterations)
    stats = instance.flow_stats()
    return (f"fabric rh all-reduce N={instance.n} fat-tree "
            f"credits={args.credits}: {result.p50_time * 1e6:.3f}us/op, "
            f"{stats['stalls']:.0f} credit stalls "
            f"({'OK' if result.correct else 'WRONG RESULT'})",
            {"p50_time": result.p50_time, "correct": result.correct,
             "stalls": stats["stalls"],
             "stall_time": stats["stall_time"]})


_SCENARIOS = {
    "pingpong": _run_pingpong,
    "rate": _run_rate,
    "engine": _run_engine,
    "collectives": _run_collectives,
    "faults": _run_faults,
    "fabrics": _run_fabrics,
}


# -- proof obligations -------------------------------------------------------------

def _verify_non_perturbation(args, scenario: str) -> Tuple[bool, str]:
    """Run bare and instrumented with the same seed; the measured results
    must be IDENTICAL (telemetry reads, never writes)."""
    runner = _SCENARIOS[scenario]
    _, bare = runner(args, Simulator(seed=args.seed), None)
    sim = Simulator(seed=args.seed)
    plane = _build_plane(args, sim, scenario)
    _, instrumented = runner(args, sim, plane)
    plane.stop()
    for key, value in bare.items():
        if instrumented.get(key) != value:
            return False, (f"telemetry perturbed the run: {key} "
                           f"{value!r} -> {instrumented.get(key)!r}")
    return True, (f"bare and instrumented runs identical across "
                  f"{len(bare)} measured quantities "
                  f"({plane.sampler.ticks} samples taken)")


def _reconcile_dump(dump: dict, tracer) -> dict:
    """Every span the flight recorder retained must appear, bit-identical,
    in a full trace of the same seed."""
    full = {(s.category, s.name, s.track, s.begin, s.end)
            for s in tracer.spans}
    retained = [(s["category"], s["name"], s["track"], s["begin"], s["end"])
                for s in dump["spans"]]
    missing = [key for key in retained if key not in full]
    total = max(len(retained), 1)
    rel_err = len(missing) / total
    return {"retained": len(retained), "missing": len(missing),
            "rel_err": rel_err, "ok": rel_err <= 0.01}


def _reconcile_faults_dump(args, dump: dict) -> dict:
    from ..analysis.faults import run_chaos_point
    from ..collectives.comm import CollectiveMode
    from ..obs.tracer import SpanTracer
    tracer = SpanTracer()
    run_chaos_point(CollectiveMode.POLL_ON_GPU, args.size, args.loss,
                    corrupt=args.loss / 2, nodes=args.nodes,
                    iterations=args.iterations, warmup=args.warmup,
                    seed=args.seed, tracer=tracer)
    return _reconcile_dump(dump, tracer)


# -- entry point --------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro monitor",
        description="Run a scenario under the live telemetry plane.")
    parser.add_argument("scenario", nargs="?", default="engine",
                        choices=sorted(_SCENARIOS),
                        help="which scenario to monitor (default: engine)")
    parser.add_argument("--quick", action="store_true",
                        help="small run for CI")
    parser.add_argument("--interval", type=float, default=5e-6,
                        help="sampling cadence in simulated seconds "
                             "(default: 5e-6)")
    parser.add_argument("--capacity", type=int, default=4096,
                        help="ring size of every time series")
    parser.add_argument("--recorder-capacity", type=int, default=512,
                        help="flight-recorder ring size (spans/instants)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--size", type=int, default=64,
                        help="message size in bytes")
    parser.add_argument("--connections", type=int, default=None,
                        help="rate/engine lanes (default: 8, quick: 4)")
    parser.add_argument("--per-connection", type=int, default=None,
                        help="messages per lane (default: 60, quick: 30)")
    parser.add_argument("--iterations", type=int, default=None,
                        help="pingpong/collective iterations")
    parser.add_argument("--warmup", type=int, default=1)
    parser.add_argument("--nodes", type=int, default=4,
                        help="collectives/faults cluster size")
    parser.add_argument("--loss", type=float, default=0.05,
                        help="faults scenario per-packet drop probability")
    parser.add_argument("--credits", type=int, default=16,
                        help="fabrics scenario per-link VC credits; 1 "
                             "forces congestion (default: 16; fabrics "
                             "needs a power-of-two --nodes)")
    parser.add_argument("--slo", action="append", metavar="SPEC",
                        help="extra objective, e.g. "
                             "'p99:span.rma.wr-put<10e-6' or "
                             "'rate:engine.messages>=6e6' (repeatable)")
    parser.add_argument("--no-presets", action="store_true",
                        help="drop the scenario's built-in objectives")
    parser.add_argument("--no-telemetry", action="store_true",
                        help="run the scenario bare (the zero-cost "
                             "reference: prints the same headline)")
    parser.add_argument("--verify", action="store_true",
                        help="assert bare and instrumented runs measure "
                             "identically (non-perturbation)")
    parser.add_argument("--force-breach", action="store_true",
                        help="arm an unsatisfiable objective (dump "
                             "artifact smoke test)")
    parser.add_argument("--reconcile", action="store_true",
                        help="faults only: reconcile the dump against a "
                             "full trace of the same seed")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="write timeseries.json, metrics.prom and "
                             "flight dumps under DIR")
    args = parser.parse_args(argv)
    args.connections = args.connections or (4 if args.quick else 8)
    args.per_connection = args.per_connection or (30 if args.quick else 60)
    args.iterations = args.iterations or (4 if args.quick else 10)
    if args.quick:
        args.nodes = min(args.nodes, 4)

    runner = _SCENARIOS[args.scenario]

    if args.verify:
        ok, detail = _verify_non_perturbation(args, args.scenario)
        print(f"[{'PASS' if ok else 'FAIL'}] non-perturbation: {detail}")
        if not ok:
            return 2

    sim = Simulator(seed=args.seed)
    plane = None if args.no_telemetry else _build_plane(args, sim,
                                                        args.scenario)
    try:
        headline, _details = runner(args, sim, plane)
    except ReproError as exc:
        print(f"scenario failed: {exc}")
        return 2
    if plane is not None:
        plane.stop()

    print(headline)
    print(f"simulated {sim.now * 1e6:.1f}us, "
          f"{sim.events_processed} events processed")
    if plane is None:
        return 0

    print()
    print(render_series_table(plane.sampler))
    print()
    print(plane.render())

    if args.reconcile and args.scenario == "faults" and plane.dumps:
        recon = _reconcile_faults_dump(args, plane.dumps[0])
        print()
        print(f"[{'PASS' if recon['ok'] else 'FAIL'}] dump reconciliation: "
              f"{recon['retained']} retained spans, "
              f"{recon['missing']} missing from the full trace "
              f"(rel err {recon['rel_err'] * 100:.2f}%, allowed 1%)")
        if not recon["ok"]:
            return 2

    if args.out:
        os.makedirs(args.out, exist_ok=True)
        write_timeseries(os.path.join(args.out, "timeseries.json"),
                         plane.sampler)
        write_prometheus(os.path.join(args.out, "metrics.prom"),
                         plane.sampler, plane.recorder.metrics)
        for i, dump in enumerate(plane.dumps):
            write_flight_record(
                os.path.join(args.out, f"flight-record-{i}.json"), dump)
        with open(os.path.join(args.out, "slo-report.json"), "w",
                  encoding="utf-8") as fh:
            json.dump(plane.report(), fh, indent=1)
        print(f"\nartifacts written to {args.out}/ "
              f"({len(plane.dumps)} flight dump(s))")

    return 1 if plane.breached else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
