"""Service-level objectives over the sampler's windows.

An :class:`Objective` declares what good service looks like —
``p99 of span.rma.wr-put < 10us``, ``rate of engine.messages >= 6e6/s`` —
and an :class:`SloMonitor` evaluates it against every sample window as the
simulation runs (the sampler calls :meth:`SloMonitor.observe` from its
tick hook).

Verdicts use the classic **multi-window burn rate**: the breach fraction
is computed over a short window (the last ``short_windows`` samples — is
it bad *right now*?) and over the long window (every evaluated sample —
has the error budget burned overall?).  Both above budget → ``breach``;
exactly one → ``warn``; neither → ``pass``.  A fast transient trips the
short window only (warn), a slow bleed trips the long one only (warn),
and sustained bad service trips both (breach) — the standard way to get
alerts that are both fast and unflappable.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..errors import ConfigError
from .sampler import Sampler

_OPS: dict = {"<": operator.lt, "<=": operator.le,
              ">": operator.gt, ">=": operator.ge}

#: Objective kinds: how the window's value is computed.
#: ``pNN``/``pNN.N`` — percentile of a histogram's window delta;
#: ``mean`` — mean of a histogram's window delta;
#: ``rate`` — counter-series deltas per second over the window;
#: ``total`` — counter-series sum over the window;
#: ``gauge`` — last gauge level in the window.
KINDS = ("rate", "total", "gauge", "mean")


@dataclass(frozen=True)
class Objective:
    """One declarative objective, e.g.
    ``Objective("put tail", "span.rma.wr-put", "p99", "<", 10e-6)``."""

    name: str
    metric: str          # series name (rate/total/gauge) or histogram name
    kind: str            # "rate" | "total" | "gauge" | "mean" | "pNN[.N]"
    op: str              # "<" | "<=" | ">" | ">="
    threshold: float
    unit: str = ""       # display only ("s", "msg/s", ...)
    budget: float = 0.0  # allowed breach fraction per evaluation window

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ConfigError(f"objective {self.name!r}: op must be one of "
                              f"{sorted(_OPS)}, got {self.op!r}")
        if self.kind not in KINDS and self._percentile_q() is None:
            raise ConfigError(f"objective {self.name!r}: kind must be one "
                              f"of {KINDS} or pNN, got {self.kind!r}")
        if not 0.0 <= self.budget < 1.0:
            raise ConfigError(f"objective {self.name!r}: budget must be in "
                              f"[0, 1), got {self.budget!r}")

    def _percentile_q(self) -> Optional[float]:
        if not self.kind.startswith("p"):
            return None
        try:
            q = float(self.kind[1:])
        except ValueError:
            return None
        # p999 is shorthand for the three-nines percentile.
        if q > 100.0 and self.kind[1:].isdigit():
            q = 100.0 * (1.0 - 10.0 ** -(len(self.kind) - 1))
        return q if 0.0 <= q <= 100.0 else None

    def describe(self) -> str:
        unit = f" {self.unit}" if self.unit else ""
        return (f"{self.kind}({self.metric}) {self.op} "
                f"{self.threshold:g}{unit}")

    @classmethod
    def parse(cls, spec: str, budget: float = 0.0) -> "Objective":
        """Parse CLI shorthand ``kind:metric OP threshold``, e.g.
        ``p99:span.rma.wr-put<10e-6`` or ``rate:engine.messages>=6e6``."""
        for op in ("<=", ">=", "<", ">"):   # two-char ops first
            if op in spec:
                lhs, _, rhs = spec.partition(op)
                kind, sep, metric = lhs.strip().partition(":")
                if not sep:
                    raise ConfigError(
                        f"bad SLO spec {spec!r}: want kind:metric{op}value")
                try:
                    threshold = float(rhs)
                except ValueError:
                    raise ConfigError(f"bad SLO threshold in {spec!r}") from None
                return cls(name=lhs.strip(), metric=metric.strip(),
                           kind=kind.strip(), op=op, threshold=threshold,
                           budget=budget)
        raise ConfigError(f"bad SLO spec {spec!r}: no comparison operator")


@dataclass
class WindowResult:
    """One objective evaluated over one sample window."""

    w0: float
    w1: float
    value: Optional[float]   # None: no data in the window (not counted)
    ok: Optional[bool]


class SloMonitor:
    """Evaluates one objective per sample window, live."""

    def __init__(self, objective: Objective, short_windows: int = 5) -> None:
        self.objective = objective
        self.short_windows = max(1, short_windows)
        self.windows: List[WindowResult] = []
        self.evaluated = 0
        self.breaches = 0
        self._recent: List[bool] = []      # last short_windows ok-flags
        self._last_t: Optional[float] = None

    # -- live evaluation ------------------------------------------------------------
    def observe(self, sampler: Sampler, t: float) -> Optional[bool]:
        """Evaluate the window ending at ``t``; returns the ok-flag (None
        when the window held no data)."""
        w0 = self._last_t if self._last_t is not None else t - sampler.interval
        self._last_t = t
        value = self._window_value(sampler, w0, t)
        ok: Optional[bool] = None
        if value is not None:
            ok = _OPS[self.objective.op](value, self.objective.threshold)
            self.evaluated += 1
            if not ok:
                self.breaches += 1
            self._recent.append(ok)
            if len(self._recent) > self.short_windows:
                del self._recent[0]
        self.windows.append(WindowResult(w0, t, value, ok))
        return ok

    def _window_value(self, sampler: Sampler, w0: float, w1: float,
                      ) -> Optional[float]:
        obj = self.objective
        q = obj._percentile_q()
        if q is not None or obj.kind == "mean":
            hist = sampler.window_histogram(obj.metric, w0, w1)
            if hist is None or not hist.count:
                return None
            return hist.mean if obj.kind == "mean" else hist.percentile(q)
        series = sampler.series(obj.metric)
        if series is None:
            return None
        if obj.kind == "gauge":
            pts = series.window(w0, w1)
            return pts[-1].value if pts else None
        pts = series.window(w0, w1)
        if not pts:
            return None
        total = float(sum(p.value for p in pts))
        # Lower-bound throughput objectives (rate >= X) only judge windows
        # with activity: a finite benchmark's setup and drain windows are
        # "no demand", not "zero service" (upper bounds still see them).
        if total == 0.0 and obj.op in (">", ">="):
            return None
        if obj.kind == "total":
            return total
        return total / (w1 - w0) if w1 > w0 else None   # "rate"

    # -- verdicts --------------------------------------------------------------------
    def burn_rates(self) -> Tuple[float, float]:
        """(short, long) breach fractions."""
        short = (sum(1 for ok in self._recent if not ok) / len(self._recent)
                 if self._recent else 0.0)
        long_ = self.breaches / self.evaluated if self.evaluated else 0.0
        return short, long_

    def verdict(self) -> dict:
        short, long_ = self.burn_rates()
        budget = self.objective.budget
        if self.evaluated == 0:
            status = "no-data"
        elif budget == 0.0:
            # Zero error budget: one breach spends it forever (there is no
            # window over which the fraction recovers below zero).
            status = "breach" if self.breaches else "pass"
        elif short > budget and long_ > budget:
            status = "breach"
        elif short > budget or long_ > budget:
            status = "warn"
        else:
            status = "pass"
        return {"name": self.objective.name,
                "objective": self.objective.describe(),
                "status": status, "evaluated": self.evaluated,
                "breaches": self.breaches, "budget": budget,
                "burn_short": short, "burn_long": long_,
                "last_value": next(
                    (w.value for w in reversed(self.windows)
                     if w.value is not None), None)}


def render_verdicts(verdicts: List[dict]) -> str:
    """Fixed-width SLO verdict table."""
    header = ("objective".ljust(44) + "status".ljust(9) + "windows".rjust(8)
              + "breach".rjust(7) + "burn s/l".rjust(14) + "  last")
    lines = [header, "-" * len(header)]
    for v in verdicts:
        burn = f"{v['burn_short'] * 100:5.1f}/{v['burn_long'] * 100:5.1f}%"
        last = "-" if v["last_value"] is None else f"{v['last_value']:.4g}"
        lines.append(f"{v['name'][:43].ljust(44)}{v['status'].ljust(9)}"
                     f"{v['evaluated']:>8}{v['breaches']:>7}{burn:>14}"
                     f"  {last}")
    return "\n".join(lines)
