"""Ring-buffered time series — the storage layer of the telemetry plane.

A :class:`Series` is a bounded list of ``(time, value)`` points with a
*kind*: ``counter`` points carry the **delta** observed in the sample
window ending at their timestamp, ``gauge`` points carry the level at the
timestamp.  The distinction matters for every consumer: rates divide
counter deltas by window length, while gauges are read as-is.

Window semantics (shared with the sampler and the SLO monitors): a point
stamped ``t`` describes the window ``(t - interval, t]``, so
:meth:`Series.window` selects points with ``w0 < t <= w1`` — half-open on
the left.  A sample taken exactly at a window's start belongs to the
*previous* window; one taken exactly at its end belongs to it.  This is
the boundary convention the window-clipping tests pin down.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, NamedTuple, Optional


class Point(NamedTuple):
    time: float
    value: float


class Series:
    """One bounded time series (``deque(maxlen=capacity)`` underneath)."""

    KINDS = ("counter", "gauge")

    __slots__ = ("name", "kind", "_points")

    def __init__(self, name: str, kind: str = "counter",
                 capacity: int = 4096) -> None:
        if kind not in self.KINDS:
            raise ValueError(f"series kind must be one of {self.KINDS}, "
                             f"got {kind!r}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self.kind = kind
        self._points: Deque[Point] = deque(maxlen=capacity)

    # -- writing -----------------------------------------------------------------
    def append(self, time: float, value: float) -> None:
        if self._points and time < self._points[-1].time:
            raise ValueError(
                f"series {self.name!r}: time went backwards "
                f"({time!r} after {self._points[-1].time!r})")
        self._points.append(Point(time, value))

    # -- reading -----------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._points.maxlen or 0

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self):
        return iter(self._points)

    def points(self) -> List[Point]:
        return list(self._points)

    @property
    def last(self) -> Optional[Point]:
        return self._points[-1] if self._points else None

    def window(self, w0: float, w1: float) -> List[Point]:
        """Points covering ``(w0, w1]`` — strictly after ``w0``, up to and
        including ``w1`` (see the module docstring for why)."""
        return [p for p in self._points if w0 < p.time <= w1]

    def total(self, w0: Optional[float] = None,
              w1: Optional[float] = None) -> float:
        """Sum of counter deltas in the window (whole series by default).
        Meaningless for gauges (use :meth:`value_at` / :attr:`last`)."""
        pts = (self._points if w0 is None and w1 is None
               else self.window(w0 if w0 is not None else float("-inf"),
                                w1 if w1 is not None else float("inf")))
        return sum(p.value for p in pts)

    def rate(self, w0: float, w1: float) -> Optional[float]:
        """Counter deltas per second over ``(w0, w1]``; None if the window
        is empty or degenerate."""
        if w1 <= w0:
            return None
        pts = self.window(w0, w1)
        if not pts:
            return None
        return sum(p.value for p in pts) / (w1 - w0)

    def value_at(self, time: float) -> Optional[float]:
        """The gauge level at ``time`` (last point at or before it)."""
        current = None
        for p in self._points:
            if p.time > time:
                break
            current = p.value
        return current

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        last = f" last={self._points[-1].value:g}" if self._points else ""
        return (f"<Series {self.name} kind={self.kind} "
                f"n={len(self._points)}{last}>")


class SeriesBank:
    """Named series created on first use, all sharing one capacity."""

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = capacity
        self._series: Dict[str, Series] = {}

    def series(self, name: str, kind: str = "counter") -> Series:
        s = self._series.get(name)
        if s is None:
            s = self._series[name] = Series(name, kind, self.capacity)
        elif s.kind != kind:
            raise ValueError(f"series {name!r} already exists as "
                             f"{s.kind!r}, asked for {kind!r}")
        return s

    def record(self, name: str, kind: str, time: float, value: float) -> None:
        self.series(name, kind).append(time, value)

    def get(self, name: str) -> Optional[Series]:
        return self._series.get(name)

    def names(self) -> List[str]:
        return sorted(self._series)

    def __len__(self) -> int:
        return len(self._series)

    def __iter__(self) -> Iterable[Series]:
        return iter(self._series[name] for name in sorted(self._series))
