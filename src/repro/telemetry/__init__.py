"""repro.telemetry — the live metrics plane.

Where :mod:`repro.obs` answers questions *after* a run (span traces,
phase breakdowns), this package watches a run *while it executes*:

* :class:`Series` / :class:`SeriesBank` — ring-buffered time series,
* :class:`Sampler` — periodic snapshots of counters/metrics on the
  simulator event loop (one re-arming heap entry, zero model perturbation),
* :class:`Objective` / :class:`SloMonitor` — declarative service-level
  objectives with multi-window burn-rate verdicts,
* :class:`FlightRecorder` — a bounded ring of recent spans/instants,
  dumped automatically on faults, retry exhaustion, or SLO breaches,
* :class:`TelemetryPlane` — the facade wiring all of it onto one
  simulator,
* exporters — JSON time series, Prometheus text, flight-record files.

Like the tracing layer, everything here is opt-in: a run that never
constructs a plane keeps :data:`~repro.sim.trace.NULL_TRACER` and is
bit-identical to one where this package was never imported.
"""

from .recorder import DEFAULT_TRIGGERS, FlightRecorder
from .sampler import Sampler
from .series import Point, Series, SeriesBank
from .slo import Objective, SloMonitor, render_verdicts
from .plane import TelemetryPlane
from .export import (
    prometheus_text,
    render_series_table,
    timeseries_doc,
    write_flight_record,
    write_prometheus,
    write_timeseries,
)

__all__ = [
    "DEFAULT_TRIGGERS",
    "FlightRecorder",
    "Objective",
    "Point",
    "Sampler",
    "Series",
    "SeriesBank",
    "SloMonitor",
    "TelemetryPlane",
    "prometheus_text",
    "render_series_table",
    "render_verdicts",
    "timeseries_doc",
    "write_flight_record",
    "write_prometheus",
    "write_timeseries",
]
