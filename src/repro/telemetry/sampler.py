"""The sampler: the telemetry plane's heartbeat on the simulator event loop.

A :class:`Sampler` re-arms itself with :meth:`Simulator.call_later` every
``interval`` simulated seconds (one heap entry per tick, no coroutine) and,
on each tick, polls its *sources*:

* **stats objects** — anything with the uniform ``snapshot()/diff()``
  protocol (:class:`~repro.engine.EngineStats`,
  :class:`~repro.faults.FaultInjector`, a reliable
  :class:`~repro.collectives.Communicator`, ...).  Counters land as
  per-window deltas, names in the optional ``GAUGES`` class attribute as
  levels.
* **counter functions** — a callable returning a flat monotonic
  ``{name: value}`` dict (per-link byte counts, NIC hardware counters);
  the sampler differences consecutive reads itself.
* **gauge functions** — a callable returning one instantaneous float
  (queue depth, proxy occupancy).
* **metrics registries** — counters by value-diffing, histograms by
  retaining per-tick :meth:`~repro.obs.metrics.Histogram.state` snapshots,
  from which :meth:`window_histogram` reconstructs the distribution of any
  ``(w0, w1]`` window via :meth:`~repro.obs.metrics.Histogram.delta` — so
  per-window tail percentiles come from the one shared
  :meth:`~repro.obs.metrics.Histogram.percentile` implementation.

Crucially the sampler only *reads* model state: it adds heap events, never
touches queues or memory, so the simulation's measured results are
bit-identical with or without it (the zero-perturbation invariant the
bench harness checks).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..obs.metrics import Histogram
from ..sim import Simulator
from .series import Series, SeriesBank


class Sampler:
    """Periodic snapshotting of counters/metrics into ring-buffered series.

    Parameters
    ----------
    sim:
        The simulator whose event loop drives the ticks.
    interval:
        Sim-time seconds between samples.
    capacity:
        Ring size of every series (and of the histogram-state rings).
    """

    def __init__(self, sim: Simulator, interval: float = 5e-6,
                 capacity: int = 4096) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval!r}")
        self.sim = sim
        self.interval = interval
        self.bank = SeriesBank(capacity)
        self.ticks = 0
        #: Tick timestamps, oldest first (ring-bounded like the series).
        self.tick_times: Deque[float] = deque(maxlen=capacity)
        #: Called after every tick as ``cb(sampler, time)`` — how the SLO
        #: monitors evaluate live instead of post-hoc.
        self.on_tick: List[Callable[["Sampler", float], None]] = []
        self._stats_sources: List[Tuple[str, object, Optional[dict]]] = []
        self._counter_fns: List[Tuple[str, Callable[[], Dict[str, float]],
                                      Dict[str, float]]] = []
        self._gauge_fns: List[Tuple[str, Callable[[], float]]] = []
        self._registries: List[Tuple[str, object, Dict[str, int]]] = []
        self._hist_states: Dict[str, Deque[Tuple[float, dict]]] = {}
        self._prev_events = 0
        self._started = False
        self._stopped = False

    # -- sources -------------------------------------------------------------------
    def watch_stats(self, prefix: str, obj: object) -> None:
        """Poll ``obj.snapshot()/diff()`` each tick; series are named
        ``{prefix}.{key}``.  Keys listed in ``type(obj).GAUGES`` record as
        gauges, the rest as counter deltas."""
        self._stats_sources.append((prefix, obj, None))

    def watch_counters(self, prefix: str,
                       fn: Callable[[], Dict[str, float]]) -> None:
        """Poll a flat monotonic counter dict; the sampler differences
        consecutive reads (first tick diffs against zero)."""
        self._counter_fns.append((prefix, fn, {}))

    def watch_gauge(self, name: str, fn: Callable[[], float]) -> None:
        """Sample ``fn()`` as an instantaneous level each tick."""
        self._gauge_fns.append((name, fn))

    def watch_registry(self, registry, prefix: str = "") -> None:
        """Poll a :class:`~repro.obs.metrics.MetricsRegistry`: counters as
        deltas, histograms as retained state snapshots for
        :meth:`window_histogram`."""
        self._registries.append((prefix, registry, {}))

    # -- lifecycle -----------------------------------------------------------------
    def start(self) -> None:
        """Arm the first tick, ``interval`` from now.  Idempotent."""
        if self._started:
            return
        self._started = True
        self._stopped = False
        self._prev_events = self.sim.events_processed
        self.sim.call_later(self.interval, self._tick, name="telemetry.tick")

    def stop(self) -> None:
        """Stop sampling: the already-scheduled tick fires as a no-op and
        does not re-arm, so the heap drains normally afterwards."""
        self._stopped = True
        self._started = False

    # -- the tick ------------------------------------------------------------------
    def _tick(self) -> None:
        if self._stopped:
            return
        t = self.sim.now
        bank = self.bank
        # Built-in: event-loop work per window (the bench harness's
        # machine-independent cost proxy, now visible live).
        events = self.sim.events_processed
        bank.record("sim.events", "counter", t, events - self._prev_events)
        self._prev_events = events

        for i, (prefix, obj, prev) in enumerate(self._stats_sources):
            snap = obj.snapshot()
            delta = obj.diff(prev) if prev is not None else dict(snap)
            gauges = getattr(type(obj), "GAUGES", ())
            for key, value in delta.items():
                kind = "gauge" if key in gauges else "counter"
                bank.record(f"{prefix}.{key}", kind, t, value)
            self._stats_sources[i] = (prefix, obj, snap)

        for prefix, fn, prev in self._counter_fns:
            current = fn()
            for key, value in current.items():
                name = f"{prefix}.{key}" if prefix else key
                bank.record(name, "counter", t, value - prev.get(key, 0))
            prev.clear()
            prev.update(current)

        for name, fn in self._gauge_fns:
            bank.record(name, "gauge", t, fn())

        for prefix, registry, prev in self._registries:
            for key, value in registry.counter_values().items():
                name = f"{prefix}.{key}" if prefix else key
                bank.record(name, "counter", t, value - prev.get(key, 0))
                prev[key] = value
            for key, hist in registry.histograms().items():
                name = f"{prefix}.{key}" if prefix else key
                ring = self._hist_states.get(name)
                if ring is None:
                    ring = self._hist_states[name] = deque(
                        maxlen=self.bank.capacity)
                last = ring[-1][1] if ring else None
                if last is not None and last["count"] == hist.count:
                    # Unchanged since the previous tick (histograms only
                    # grow, so equal counts mean equal content): share the
                    # state object instead of re-copying the buckets.
                    ring.append((t, last))
                else:
                    ring.append((t, hist.state()))

        self.ticks += 1
        self.tick_times.append(t)
        for cb in self.on_tick:
            cb(self, t)
        if not self._stopped:
            self.sim.call_later(self.interval, self._tick,
                                name="telemetry.tick")

    # -- windowed reads ------------------------------------------------------------
    def histogram_names(self) -> List[str]:
        return sorted(self._hist_states)

    def window_histogram(self, name: str, w0: float, w1: float,
                         ) -> Optional[Histogram]:
        """The distribution of samples observed in ``(w0, w1]``, built by
        differencing the retained histogram states nearest the bounds.
        None if the histogram was never seen or has no state at or before
        ``w1`` yet."""
        ring = self._hist_states.get(name)
        if not ring:
            return None
        earlier = current = None
        for t, state in ring:
            if t <= w0:
                earlier = state
            if t <= w1:
                current = state
            else:
                break
        if current is None:
            return None
        return Histogram.delta(name, current, earlier)

    def percentile(self, name: str, q: float, w0: Optional[float] = None,
                   w1: Optional[float] = None) -> Optional[float]:
        """``q``-th percentile of histogram ``name`` over ``(w0, w1]``
        (whole retained history by default) via THE shared
        :meth:`~repro.obs.metrics.Histogram.percentile`."""
        hist = self.window_histogram(
            name, w0 if w0 is not None else float("-inf"),
            w1 if w1 is not None else float("inf"))
        return hist.percentile(q) if hist is not None else None

    def series(self, name: str) -> Optional[Series]:
        return self.bank.get(name)
