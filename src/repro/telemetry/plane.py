"""The telemetry plane: one object that arms the whole live-metrics stack.

Construction wires the three pieces together on one simulator:

* a :class:`~repro.telemetry.FlightRecorder` installed as ``sim.tracer``
  (so models feed it spans/instants/metrics, and span durations become
  live latency histograms),
* a :class:`~repro.telemetry.Sampler` ticking on the event loop, watching
  the recorder's metrics registry out of the box (add model stats with
  :meth:`watch_stats` / :meth:`watch_counters` / :meth:`watch_gauge`),
* one :class:`~repro.telemetry.SloMonitor` per declared objective,
  evaluated live from the sampler's tick hook; an objective's FIRST breach
  trips the flight recorder, so the dump captures the spans around the
  moment service went bad.

The zero-cost story mirrors :class:`~repro.sim.trace.NullTracer`: a
simulation that never constructs a plane keeps ``NULL_TRACER`` and pays
nothing — not an event, not a branch.  The plane is opt-in per run
(``python -m repro monitor``), never ambient.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from ..sim import Simulator
from .recorder import DEFAULT_CATEGORIES, DEFAULT_TRIGGERS, FlightRecorder
from .sampler import Sampler
from .slo import Objective, SloMonitor, render_verdicts


class TelemetryPlane:
    """Live telemetry for one simulator: sampler + SLOs + flight recorder."""

    def __init__(self, sim: Simulator, interval: float = 5e-6,
                 capacity: int = 4096,
                 objectives: Iterable[Objective] = (),
                 recorder_capacity: int = 512,
                 triggers: Iterable[str] = DEFAULT_TRIGGERS,
                 span_categories: Optional[Iterable[str]] = DEFAULT_CATEGORIES,
                 short_windows: int = 5) -> None:
        self.sim = sim
        self.recorder = FlightRecorder(capacity=recorder_capacity,
                                       triggers=triggers,
                                       categories=span_categories)
        sim.set_tracer(self.recorder)
        self.sampler = Sampler(sim, interval=interval, capacity=capacity)
        self.sampler.watch_registry(self.recorder.metrics)
        self._short_windows = short_windows
        self.monitors: List[SloMonitor] = [
            SloMonitor(o, short_windows) for o in objectives]
        self.dumps: List[dict] = []
        self.recorder.on_trip.append(lambda _reason, dump:
                                     self.dumps.append(dump))
        self.sampler.on_tick.append(self._evaluate)

    # -- wiring ----------------------------------------------------------------
    def add_objective(self, objective: Objective) -> SloMonitor:
        monitor = SloMonitor(objective, self._short_windows)
        self.monitors.append(monitor)
        return monitor

    def watch_stats(self, prefix: str, obj: object) -> None:
        self.sampler.watch_stats(prefix, obj)

    def watch_counters(self, prefix: str,
                       fn: Callable[[], Dict[str, float]]) -> None:
        self.sampler.watch_counters(prefix, fn)

    def watch_gauge(self, name: str, fn: Callable[[], float]) -> None:
        self.sampler.watch_gauge(name, fn)

    def watch_triggered(self, unit) -> None:
        """Chain/counter activity of one node's triggered-operations unit
        (→ ``trig.{node}.*`` series, ``armed`` as a gauge)."""
        self.watch_stats(f"trig.n{unit.node.node_id}", unit.stats)

    def watch_mpi(self, comm) -> None:
        """The MPI layer's aggregated protocol counters plus every rank's
        matching queues (→ ``mpi.*`` and ``mpi.rank{r}.match.*`` series)."""
        self.watch_stats("mpi", comm)
        for rank in comm.ranks:
            self.watch_stats(f"mpi.rank{rank.rank}.match", rank.matcher)

    def watch_workloads(self, run) -> None:
        """The traffic generator's request accounting (→ ``workload.*``
        series; ``queue_depth`` and ``inflight`` as gauges) plus, for the
        engine control mode, the posting path's doorbell counters."""
        self.watch_stats("workload", run.stats)
        if getattr(run.transport, "engine_stats", None) is not None \
                and run.transport.mode == "engine":
            self.watch_stats("workload.engine", run.transport.engine_stats)

    def watch_causal(self) -> None:
        """Flow-event emission rates (→ ``flow.{kind}`` series) plus a
        live backlog gauge: posts whose delivery has not yet been observed
        (``flow.in_flight``) — a cheap congestion indicator built from the
        recorder's causal counters, no DAG assembly required."""
        counters = self.recorder.metrics

        def in_flight() -> float:
            posted = counters.counter("flow.pst").value
            delivered = counters.counter("flow.dlv").value
            return float(max(0, posted - delivered))

        self.watch_gauge("flow.in_flight", in_flight)

    def watch_fabrics(self, instance) -> None:
        """A scale-out fabric's congestion accounting (→ aggregate
        ``fabric.stalls`` / ``fabric.stall_time`` / ``fabric.bytes``
        series plus per-link ``fabric.link.{a}-{b}.bytes``, and a live
        ``fabric.in_flight`` gauge of credits currently held).  The
        counters come straight from every link's
        :class:`~repro.network.link.FlowState`, so a rising
        ``rate:fabric.stalls`` is credit backpressure, not a model
        artifact — the SLO hook the ``fabrics`` monitor preset binds."""
        links = sorted(instance.net.links().items())

        def read() -> Dict[str, float]:
            stats = instance.flow_stats()
            out = {"fabric.stalls": float(stats["stalls"]),
                   "fabric.stall_time": stats["stall_time"]}
            total = 0.0
            for (a, b), link in links:
                sent = float(sum(link.bytes_sent))
                out[f"fabric.link.{a}-{b}.bytes"] = sent
                total += sent
            out["fabric.bytes"] = total
            return out

        self.watch_counters("", read)
        self.watch_gauge("fabric.in_flight",
                         lambda: float(instance.flow_stats()["in_flight"]))

    def watch_fabric(self, fabric, bandwidth: Optional[float] = None) -> None:
        """Per-link wire-byte counters (→ ``link.{a}-{b}.bytes`` series);
        with ``bandwidth`` also a ``link.{a}-{b}.util`` gauge in [0, 1]."""
        links = sorted(fabric.links().items())

        def read() -> Dict[str, float]:
            return {f"link.{a}-{b}.bytes": sum(link.bytes_sent)
                    for (a, b), link in links}

        self.watch_counters("", read)
        if bandwidth:
            # Utilization is the counter's window rate over capacity; the
            # summary renderer computes it from the bytes series, so the
            # plane records bandwidth once for it to find.
            self.link_bandwidth = bandwidth

    # -- lifecycle --------------------------------------------------------------
    def start(self) -> None:
        self.sampler.start()

    def stop(self) -> None:
        self.sampler.stop()

    # -- live SLO evaluation ------------------------------------------------------
    def _evaluate(self, sampler: Sampler, t: float) -> None:
        for monitor in self.monitors:
            ok = monitor.observe(sampler, t)
            if ok is False and monitor.breaches == 1:
                # First breach of this objective: capture the black box.
                self.recorder.trip(f"slo:{monitor.objective.name}",
                                   detail=monitor.verdict())

    # -- reporting ----------------------------------------------------------------
    def verdicts(self) -> List[dict]:
        return [m.verdict() for m in self.monitors]

    @property
    def breached(self) -> bool:
        return any(v["status"] == "breach" for v in self.verdicts())

    def report(self) -> dict:
        return {
            "interval": self.sampler.interval,
            "ticks": self.sampler.ticks,
            "series": self.sampler.bank.names(),
            "histograms": self.sampler.histogram_names(),
            "objectives": self.verdicts(),
            "trips": list(self.recorder.trips),
            "dumps": len(self.dumps),
        }

    def render(self) -> str:
        lines = [f"telemetry: {self.sampler.ticks} samples @ "
                 f"{self.sampler.interval * 1e6:g}us, "
                 f"{len(self.sampler.bank)} series, "
                 f"{len(self.sampler.histogram_names())} histograms"]
        if self.monitors:
            lines.append("")
            lines.append(render_verdicts(self.verdicts()))
        if self.recorder.trips:
            lines.append("")
            lines.append("flight recorder trips:")
            for trip in self.recorder.trips:
                lines.append(f"  [{trip['time'] * 1e6:12.3f}us] "
                             f"{trip['reason']}")
        return "\n".join(lines)
