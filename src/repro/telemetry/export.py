"""Telemetry exporters: JSON time-series, Prometheus text, flight dumps.

Three output shapes, one per consumer:

* :func:`timeseries_doc` / :func:`write_timeseries` — the full sampled
  history as JSON (plotting, campaign aggregation),
* :func:`prometheus_text` — the de-facto scrape format, so any Prometheus/
  Grafana tooling ingests a run's final state without adapters; the
  power-of-two histogram buckets map directly onto cumulative ``le``
  buckets,
* :func:`write_flight_record` — a flight-recorder dump to disk, creating
  parent directories (the same fix the trace CLI got — artifact paths
  rarely exist on fresh checkouts/CI workspaces).
"""

from __future__ import annotations

import json
import os
import re
from typing import Optional

from .sampler import Sampler

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Sanitize a metric name for the Prometheus exposition format."""
    sanitized = _NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"repro_{sanitized}"


def _write_json(path: str, doc: dict) -> None:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)


# -- JSON time series -------------------------------------------------------------

def timeseries_doc(sampler: Sampler) -> dict:
    """Every series' points (plus tick metadata), JSON-safe."""
    return {
        "interval": sampler.interval,
        "ticks": sampler.ticks,
        "tick_times": list(sampler.tick_times),
        "series": {
            s.name: {"kind": s.kind,
                     "points": [[p.time, p.value] for p in s]}
            for s in sampler.bank
        },
    }


def write_timeseries(path: str, sampler: Sampler) -> dict:
    doc = timeseries_doc(sampler)
    _write_json(path, doc)
    return doc


# -- Prometheus text format ---------------------------------------------------------

def prometheus_text(sampler: Sampler, registry=None) -> str:
    """The run's final state in the Prometheus exposition format.

    Counter series expose their lifetime totals, gauges their last level.
    With a :class:`~repro.obs.metrics.MetricsRegistry`, its histograms are
    rendered as cumulative ``le`` buckets (each power-of-two bucket's upper
    bound ``2**e`` becomes a ``le`` label) plus ``_sum``/``_count``.
    """
    lines = []
    for series in sampler.bank:
        name = _prom_name(series.name)
        if series.kind == "counter":
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name}_total {series.total():g}")
        else:
            last = series.last
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {last.value if last else 0:g}")
    if registry is not None:
        for hname, hist in sorted(registry.histograms().items()):
            name = _prom_name(hname)
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for e in sorted(hist.buckets):
                cumulative += hist.buckets[e]
                lines.append(f'{name}_bucket{{le="{2.0 ** e:g}"}} '
                             f"{cumulative}")
            lines.append(f'{name}_bucket{{le="+Inf"}} {hist.count}')
            lines.append(f"{name}_sum {hist.total:g}")
            lines.append(f"{name}_count {hist.count}")
    return "\n".join(lines) + "\n"


def write_prometheus(path: str, sampler: Sampler, registry=None) -> None:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(prometheus_text(sampler, registry))


# -- flight-recorder dumps -----------------------------------------------------------

def write_flight_record(path: str, dump: dict) -> None:
    """Persist one flight-recorder dump, creating parent directories."""
    _write_json(path, dump)


# -- per-window summary table ---------------------------------------------------------

def render_series_table(sampler: Sampler, names: Optional[list] = None,
                        ) -> str:
    """Fixed-width per-series summary: totals for counters (plus the mean
    rate over the sampled range), last level for gauges."""
    rows = []
    span = None
    if len(sampler.tick_times) >= 2:
        span = sampler.tick_times[-1] - sampler.tick_times[0]
    for series in sampler.bank:
        if names is not None and series.name not in names:
            continue
        if series.kind == "counter":
            total = series.total()
            rate = ""
            if span and len(series) >= 2:
                # Rate over the retained windows (skip the first point:
                # its delta covers time before the retained range).
                pts = series.points()[1:]
                rate = f"{sum(p.value for p in pts) / span:,.0f}/s"
            rows.append((series.name, f"{total:,.0f}", rate))
        else:
            last = series.last
            rows.append((series.name, "-" if last is None
                         else f"{last.value:g}", "gauge"))
    if not rows:
        return "(no series sampled)"
    width = max(len(name) for name, _, _ in rows) + 2
    lines = ["series".ljust(width) + "total/last".rjust(16) + "rate".rjust(16)]
    lines.append("-" * (width + 32))
    for name, value, rate in rows:
        lines.append(name.ljust(width) + value.rjust(16) + rate.rjust(16))
    return "\n".join(lines)
