"""Telemetry exporters: JSON time-series, Prometheus text, flight dumps.

Three output shapes, one per consumer:

* :func:`timeseries_doc` / :func:`write_timeseries` — the full sampled
  history as JSON (plotting, campaign aggregation),
* :func:`prometheus_text` — the de-facto scrape format, so any Prometheus/
  Grafana tooling ingests a run's final state without adapters; the
  power-of-two histogram buckets map directly onto cumulative ``le``
  buckets,
* :func:`write_flight_record` — a flight-recorder dump to disk, creating
  parent directories (the same fix the trace CLI got — artifact paths
  rarely exist on fresh checkouts/CI workspaces).
"""

from __future__ import annotations

import json
import os
import re
from typing import Optional

from .sampler import Sampler

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Sanitize a metric name for the Prometheus exposition format."""
    sanitized = _NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return f"repro_{sanitized}"


def _prom_label_value(value: str) -> str:
    """Escape a label value per the exposition format: backslash, double
    quote, and newline.  Entity ids like ``rel.3->0.tx`` carry ``->`` and
    arbitrary punctuation — legal in label VALUES, but only once escaped."""
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def _family(series_name: str):
    """Split ``prefix.<entity>.<metric>`` into a metric family + label.

    Dotted series with an entity segment in the middle (``link.0-1.bytes``,
    ``rel.3->0.tx``) collapse into ONE family (``repro_link_bytes``) whose
    samples differ by an ``id`` label — the exposition format forbids
    repeating ``# HELP``/``# TYPE`` per entity, and entity names are not
    legal in metric names anyway.  Two-segment names stay label-free.
    """
    parts = series_name.split(".")
    if len(parts) >= 3:
        return _prom_name(f"{parts[0]}_{parts[-1]}"), ".".join(parts[1:-1])
    return _prom_name(series_name), None


def _write_json(path: str, doc: dict) -> None:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)


# -- JSON time series -------------------------------------------------------------

def timeseries_doc(sampler: Sampler) -> dict:
    """Every series' points (plus tick metadata), JSON-safe."""
    return {
        "interval": sampler.interval,
        "ticks": sampler.ticks,
        "tick_times": list(sampler.tick_times),
        "series": {
            s.name: {"kind": s.kind,
                     "points": [[p.time, p.value] for p in s]}
            for s in sampler.bank
        },
    }


def write_timeseries(path: str, sampler: Sampler) -> dict:
    doc = timeseries_doc(sampler)
    _write_json(path, doc)
    return doc


# -- Prometheus text format ---------------------------------------------------------

def prometheus_text(sampler: Sampler, registry=None) -> str:
    """The run's final state in the Prometheus exposition format.

    Counter series expose their lifetime totals, gauges their last level.
    Series sharing a family (per-link byte counters, per-channel
    reliability stats) are grouped under ONE ``# HELP``/``# TYPE`` header
    and distinguished by an escaped ``id`` label.  With a
    :class:`~repro.obs.metrics.MetricsRegistry`, its histograms are
    rendered as cumulative ``le`` buckets (each power-of-two bucket's upper
    bound ``2**e`` becomes a ``le`` label) plus ``_sum``/``_count``.
    """
    # (family name, kind) -> [(label, series)]; one header per family even
    # when many entities share it.  The kind rides in the key so a (never
    # expected) counter/gauge clash degrades to two families instead of an
    # exposition-format violation.
    families: dict = {}
    for series in sampler.bank:
        name, label = _family(series.name)
        families.setdefault((name, series.kind), []).append((label, series))
    lines = []
    for name, kind in sorted(families):
        samples = families[(name, kind)]
        lines.append(f"# HELP {name} repro telemetry series "
                     f"({len(samples)} sample(s))")
        lines.append(f"# TYPE {name} {kind}")
        for label, series in samples:
            tag = (f'{{id="{_prom_label_value(label)}"}}'
                   if label is not None else "")
            if kind == "counter":
                lines.append(f"{name}_total{tag} {series.total():g}")
            else:
                last = series.last
                lines.append(f"{name}{tag} {last.value if last else 0:g}")
    if registry is not None:
        seen = set()
        for hname, hist in sorted(registry.histograms().items()):
            name, label = _family(hname)
            tag = (f'id="{_prom_label_value(label)}"'
                   if label is not None else "")
            if name not in seen:
                seen.add(name)
                lines.append(f"# HELP {name} repro telemetry histogram")
                lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for e in sorted(hist.buckets):
                cumulative += hist.buckets[e]
                sep = "," if tag else ""
                lines.append(f'{name}_bucket{{{tag}{sep}le="{2.0 ** e:g}"}} '
                             f"{cumulative}")
            sep = "," if tag else ""
            lines.append(f'{name}_bucket{{{tag}{sep}le="+Inf"}} '
                         f"{hist.count}")
            braces = f"{{{tag}}}" if tag else ""
            lines.append(f"{name}_sum{braces} {hist.total:g}")
            lines.append(f"{name}_count{braces} {hist.count}")
    return "\n".join(lines) + "\n"


def write_prometheus(path: str, sampler: Sampler, registry=None) -> None:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(prometheus_text(sampler, registry))


# -- flight-recorder dumps -----------------------------------------------------------

def write_flight_record(path: str, dump: dict) -> None:
    """Persist one flight-recorder dump, creating parent directories."""
    _write_json(path, dump)


# -- per-window summary table ---------------------------------------------------------

def render_series_table(sampler: Sampler, names: Optional[list] = None,
                        ) -> str:
    """Fixed-width per-series summary: totals for counters (plus the mean
    rate over the sampled range), last level for gauges."""
    rows = []
    span = None
    if len(sampler.tick_times) >= 2:
        span = sampler.tick_times[-1] - sampler.tick_times[0]
    for series in sampler.bank:
        if names is not None and series.name not in names:
            continue
        if series.kind == "counter":
            total = series.total()
            rate = ""
            if span and len(series) >= 2:
                # Rate over the retained windows (skip the first point:
                # its delta covers time before the retained range).
                pts = series.points()[1:]
                rate = f"{sum(p.value for p in pts) / span:,.0f}/s"
            rows.append((series.name, f"{total:,.0f}", rate))
        else:
            last = series.last
            rows.append((series.name, "-" if last is None
                         else f"{last.value:g}", "gauge"))
    if not rows:
        return "(no series sampled)"
    width = max(len(name) for name, _, _ in rows) + 2
    lines = ["series".ljust(width) + "total/last".rjust(16) + "rate".rjust(16)]
    lines.append("-" * (width + 32))
    for name, value, rate in rows:
        lines.append(name.ljust(width) + value.rjust(16) + rate.rjust(16))
    return "\n".join(lines)
