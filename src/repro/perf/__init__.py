"""Performance engineering for the reproduction itself.

Two instruments, built on the observability layer:

* the **cost-attribution profiler** (:mod:`repro.perf.profiler`) — carves
  a measured ping-pong into WQE-generation / doorbell-MMIO / wire /
  data-DMA / completion-MMIO / completion-polling components by interval
  arithmetic over the span trace, reconciling exactly against the
  driver's own end-to-end timing (``python -m repro profile``);
* the **benchmark-regression harness** (:mod:`repro.perf.harness` +
  :mod:`repro.perf.scenarios`) — canonical deterministic scenarios whose
  metrics and shape invariants are pinned in ``BENCH_<NAME>.json``
  baselines at the repository root (``python -m repro bench
  --record/--check``).
"""

from .harness import (
    SCHEMA_VERSION,
    SIM_TOLERANCE,
    WALLCLOCK_FLOOR,
    CheckReport,
    Deviation,
    Metric,
    Scenario,
    ScenarioResult,
    baseline_path,
    check,
    load_baseline,
    record,
    render_reports,
)
from .profiler import (
    PHASE_ORDER,
    RECONCILE_TOLERANCE,
    ModeProfile,
    PhaseCost,
    attribute_phases,
    profile_from_trace,
    profile_pingpong,
    render_profile,
)
from .scenarios import SCENARIOS, get_scenarios

__all__ = [
    "CheckReport",
    "Deviation",
    "Metric",
    "ModeProfile",
    "PHASE_ORDER",
    "PhaseCost",
    "RECONCILE_TOLERANCE",
    "SCENARIOS",
    "SCHEMA_VERSION",
    "SIM_TOLERANCE",
    "Scenario",
    "ScenarioResult",
    "WALLCLOCK_FLOOR",
    "attribute_phases",
    "baseline_path",
    "check",
    "get_scenarios",
    "load_baseline",
    "profile_from_trace",
    "profile_pingpong",
    "record",
    "render_profile",
    "render_reports",
]
