"""``python -m repro profile`` / ``python -m repro bench`` — the perf CLI.

``profile`` runs one traced measurement and prints the cost-attribution
table (:mod:`repro.perf.profiler`); ``--json`` additionally dumps the
machine-readable profile.  Exit status reflects reconciliation: nonzero if
the attributed phases disagree with the end-to-end timing.

``bench`` drives the regression harness (:mod:`repro.perf.harness`):

* ``--record`` re-measures the selected scenarios and (re)writes their
  ``BENCH_<NAME>.json`` baselines,
* ``--check`` (the default) re-measures and compares against the
  committed baselines, printing a per-metric diff and exiting nonzero on
  any regression,
* ``--quick`` restricts both to the CI-smoke subset,
* ``--list`` prints the registry.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import sys

from .harness import check, record, render_reports
from .profiler import profile_pingpong, render_profile
from .scenarios import SCENARIOS, get_scenarios


def profile_main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro profile",
        description="Attribute one ping-pong's cost to phases "
                    "(WQE generation, MMIO, wire, DMA, polling).")
    parser.add_argument("--fabric", choices=("extoll", "ib"),
                        default="extoll")
    parser.add_argument("--mode", default="dev2dev-direct",
                        help="communication mode (default: dev2dev-direct)")
    parser.add_argument("--size", type=int, default=64,
                        help="message size in bytes (default: 64)")
    parser.add_argument("--iterations", type=int, default=10)
    parser.add_argument("--warmup", type=int, default=2)
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the profile as JSON")
    args = parser.parse_args(argv)

    profile = profile_pingpong(args.fabric, args.mode, args.size,
                               iterations=args.iterations,
                               warmup=args.warmup)
    print(render_profile(profile))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(profile.to_dict(), fh, indent=2)
            fh.write("\n")
        print(f"profile written to {args.json}")
    return 0 if profile.reconciles else 1


def _repo_root_default() -> str:
    # src/repro/perf/cli.py -> repository root (where BENCH_*.json live).
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.abspath(os.path.join(here, "..", "..", ".."))


def bench_main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Record or check benchmark-regression baselines "
                    "(BENCH_<SCENARIO>.json).")
    action = parser.add_mutually_exclusive_group()
    action.add_argument("--record", action="store_true",
                        help="re-measure and (re)write baselines")
    action.add_argument("--check", action="store_true",
                        help="re-measure and compare against baselines "
                             "(default action)")
    action.add_argument("--list", action="store_true",
                        help="list registered scenarios and exit")
    parser.add_argument("--scenario", action="append", default=None,
                        metavar="NAME",
                        help="restrict to one scenario (repeatable; "
                             "default: all)")
    parser.add_argument("--quick", action="store_true",
                        help="only scenarios marked quick (CI smoke set)")
    parser.add_argument("--dir", default=None, metavar="PATH",
                        help="baseline directory (default: repository "
                             "root)")
    parser.add_argument("--strict-wallclock", action="store_true",
                        help="treat wall-clock collapses as regressions, "
                             "not warnings")
    parser.add_argument("--verbose", action="store_true",
                        help="also print metrics that are within "
                             "tolerance")
    args = parser.parse_args(argv)

    if args.list:
        width = max(len(n) for n in SCENARIOS)
        for name, s in SCENARIOS.items():
            quick = "quick" if s.quick else "full "
            print(f"{name.ljust(width)}  [{quick}]  {s.description}")
        return 0

    try:
        scenarios = get_scenarios(args.scenario, quick_only=args.quick)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    root = args.dir or _repo_root_default()

    if args.record:
        stamp = (datetime.datetime.now(datetime.timezone.utc)
                 .strftime("%Y-%m-%dT%H:%M:%SZ"))
        for s in scenarios:
            path = record(s, root, recorded_at=stamp)
            print(f"recorded {s.name} -> {path}")
        return 0

    reports = [check(s, root, strict_wallclock=args.strict_wallclock)
               for s in scenarios]
    print(render_reports(reports, verbose=args.verbose))
    return 0 if all(r.ok for r in reports) else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(bench_main())
