"""Benchmark-regression harness: record baselines, check runs against them.

Every canonical scenario (:mod:`repro.perf.scenarios`) produces *metrics*
and *invariants*.  ``record`` serializes them to ``BENCH_<NAME>.json`` at
the repository root; ``check`` re-runs the scenario and compares, metric by
metric, with per-kind tolerance bands:

``sim``
    Simulated-time quantities (latencies, bandwidths, ratios).  The
    simulator is deterministic, so these must agree to
    :data:`SIM_TOLERANCE` — effectively exact; the band only absorbs
    float-formatting round trips.
``count``
    Event/step/retransmit counts.  Exact by default.
``wallclock``
    Host-dependent quantities (seconds of real time, simulated events per
    second).  Never exact; the check only *warns* when throughput falls
    below :data:`WALLCLOCK_FLOOR` of the baseline, and only fails when the
    caller opts into ``strict_wallclock`` (CI machines vary too much for
    a hard default).

Invariants are booleans re-evaluated on the fresh run (the shape checks of
:mod:`repro.analysis.invariants`); a fresh ``False`` is always a
regression, whatever the baseline said.

The comparison report is designed to be read in a CI log: one line per
deviation with the values, the relative error, and the band it violated.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

#: Bump when the baseline file layout changes incompatibly; ``check``
#: refuses to compare across schema versions.
SCHEMA_VERSION = 1

#: Relative tolerance for ``sim``-kind metrics (deterministic simulator:
#: this only needs to absorb JSON float round-tripping).
SIM_TOLERANCE = 1e-3

#: A wall-clock throughput below this fraction of the baseline draws a
#: warning (or a failure under ``strict_wallclock``).
WALLCLOCK_FLOOR = 0.25

_DEFAULT_TOLERANCE = {"sim": SIM_TOLERANCE, "count": 0.0}


@dataclass(frozen=True)
class Metric:
    """One scenario measurement."""

    value: float
    kind: str = "sim"              # "sim" | "count" | "wallclock"
    unit: str = ""
    tol: Optional[float] = None    # relative band; None -> default by kind

    def tolerance(self) -> Optional[float]:
        if self.tol is not None:
            return self.tol
        return _DEFAULT_TOLERANCE.get(self.kind)  # wallclock -> None

    def to_dict(self) -> dict:
        out = {"value": self.value, "kind": self.kind}
        if self.unit:
            out["unit"] = self.unit
        if self.tol is not None:
            out["tol"] = self.tol
        return out

    @staticmethod
    def from_dict(d: dict) -> "Metric":
        return Metric(value=d["value"], kind=d.get("kind", "sim"),
                      unit=d.get("unit", ""), tol=d.get("tol"))


@dataclass
class ScenarioResult:
    """What one scenario run produced."""

    metrics: Dict[str, Metric] = field(default_factory=dict)
    invariants: Dict[str, bool] = field(default_factory=dict)
    notes: Dict[str, str] = field(default_factory=dict)  # invariant details
    #: Documentary JSON (curves, sweeps) carried into the baseline file
    #: under ``"extra"``.  ``check`` only compares ``metrics`` and
    #: ``invariants``, so extra payloads never gate — they exist so a
    #: committed baseline doubles as a data artifact (e.g. the offered-load
    #: vs achieved-throughput saturation curve behind a knee metric).
    extra: Dict[str, object] = field(default_factory=dict)

    def metric(self, name: str, value: float, kind: str = "sim",
               unit: str = "", tol: Optional[float] = None) -> None:
        self.metrics[name] = Metric(value, kind, unit, tol)

    def invariant(self, name: str, verdict) -> None:
        """Record an ``(ok, detail)`` pair from
        :mod:`repro.analysis.invariants` (or a bare bool)."""
        if isinstance(verdict, tuple):
            ok, detail = verdict
            self.invariants[name] = bool(ok)
            self.notes[name] = detail
        else:
            self.invariants[name] = bool(verdict)


@dataclass(frozen=True)
class Scenario:
    """A registered benchmark scenario."""

    name: str
    description: str
    run: Callable[[], ScenarioResult]
    quick: bool = True  # included in ``--quick`` (CI smoke) runs

    @property
    def baseline_filename(self) -> str:
        return "BENCH_" + self.name.upper().replace("-", "_") + ".json"


# -- baseline files -------------------------------------------------------------

def baseline_path(scenario: Scenario, root: str) -> str:
    return os.path.join(root, scenario.baseline_filename)


def record(scenario: Scenario, root: str,
           result: Optional[ScenarioResult] = None,
           recorded_at: Optional[str] = None) -> str:
    """Run ``scenario`` (unless ``result`` is supplied) and write its
    baseline file; returns the path."""
    result = result if result is not None else scenario.run()
    doc = {
        "schema": SCHEMA_VERSION,
        "scenario": scenario.name,
        "description": scenario.description,
        "recorded_at": recorded_at,
        "metrics": {k: m.to_dict() for k, m in sorted(result.metrics.items())},
        "invariants": dict(sorted(result.invariants.items())),
    }
    if result.extra:
        doc["extra"] = result.extra
    path = baseline_path(scenario, root)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path


def load_baseline(scenario: Scenario, root: str) -> dict:
    path = baseline_path(scenario, root)
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: baseline schema {doc.get('schema')!r} != "
            f"supported {SCHEMA_VERSION} — re-record with "
            f"'python -m repro bench --record'")
    return doc


# -- checking -------------------------------------------------------------------

@dataclass(frozen=True)
class Deviation:
    """One comparison line: a metric delta or an invariant verdict."""

    name: str
    status: str        # "ok" | "regression" | "warning" | "new" | "missing"
    detail: str


@dataclass
class CheckReport:
    scenario: str
    deviations: List[Deviation] = field(default_factory=list)
    error: Optional[str] = None   # missing/unreadable baseline etc.

    @property
    def regressions(self) -> List[Deviation]:
        return [d for d in self.deviations if d.status == "regression"]

    @property
    def warnings(self) -> List[Deviation]:
        return [d for d in self.deviations if d.status == "warning"]

    @property
    def ok(self) -> bool:
        return self.error is None and not self.regressions

    def render(self, verbose: bool = False) -> str:
        counts = {}
        for d in self.deviations:
            counts[d.status] = counts.get(d.status, 0) + 1
        summary = ", ".join(f"{n} {s}" for s, n in sorted(counts.items()))
        head = (f"{'FAIL' if not self.ok else 'ok  '} {self.scenario}"
                + (f"  ({summary})" if summary else ""))
        lines = [head]
        if self.error:
            lines.append(f"    ERROR   {self.error}")
        for d in self.deviations:
            if d.status == "ok" and not verbose:
                continue
            lines.append(f"    {d.status.upper():<11}{d.name}: {d.detail}")
        return "\n".join(lines)


def _compare_metric(name: str, base: Metric, cur: Optional[Metric],
                    strict_wallclock: bool) -> Deviation:
    if cur is None:
        return Deviation(name, "regression",
                         "present in baseline but missing from this run")
    denom = max(abs(base.value), 1e-12)
    rel = abs(cur.value - base.value) / denom
    unit = f" {base.unit}" if base.unit else ""
    if base.kind == "wallclock":
        # Direction by unit: rates ("…/s") collapse downward, durations
        # (seconds) blow up upward.  Getting faster is always fine.
        higher_is_better = base.unit.endswith("/s")
        collapsed = (cur.value < base.value * WALLCLOCK_FLOOR
                     if higher_is_better
                     else cur.value > base.value / WALLCLOCK_FLOOR)
        if collapsed:
            status = "regression" if strict_wallclock else "warning"
            return Deviation(name, status,
                             f"{cur.value:.4g}{unit} vs baseline "
                             f"{base.value:.4g}{unit} — outside the "
                             f"{WALLCLOCK_FLOOR:g}x wallclock band")
        return Deviation(name, "ok",
                         f"{cur.value:.4g}{unit} vs baseline "
                         f"{base.value:.4g}{unit} (wallclock, informational)")
    tol = base.tolerance() or 0.0
    if rel > tol:
        return Deviation(name, "regression",
                         f"{base.value:.6g} -> {cur.value:.6g}{unit} "
                         f"({rel * 100:+.3f}% rel, tolerance {tol * 100:g}%)")
    return Deviation(name, "ok",
                     f"{cur.value:.6g}{unit} (rel err {rel * 100:.4f}%)")


def check(scenario: Scenario, root: str,
          result: Optional[ScenarioResult] = None,
          strict_wallclock: bool = False) -> CheckReport:
    """Run ``scenario`` fresh (unless ``result`` is supplied) and compare
    against its recorded baseline."""
    report = CheckReport(scenario=scenario.name)
    try:
        baseline = load_baseline(scenario, root)
    except FileNotFoundError:
        report.error = (f"no baseline {scenario.baseline_filename} — "
                        f"record one with 'python -m repro bench --record'")
        return report
    except ValueError as exc:
        report.error = str(exc)
        return report

    result = result if result is not None else scenario.run()
    base_metrics = {k: Metric.from_dict(v)
                    for k, v in baseline.get("metrics", {}).items()}
    for name in sorted(base_metrics):
        report.deviations.append(_compare_metric(
            name, base_metrics[name], result.metrics.get(name),
            strict_wallclock))
    for name in sorted(result.metrics):
        if name not in base_metrics:
            m = result.metrics[name]
            report.deviations.append(Deviation(
                name, "new", f"{m.value:.6g} {m.unit} — not in baseline "
                             f"(re-record to pin it)"))

    base_inv = baseline.get("invariants", {})
    for name in sorted(set(base_inv) | set(result.invariants)):
        fresh = result.invariants.get(name)
        note = result.notes.get(name, "")
        if fresh is None:
            report.deviations.append(Deviation(
                f"invariant:{name}", "missing",
                "in baseline but not evaluated by this run"))
        elif not fresh:
            report.deviations.append(Deviation(
                f"invariant:{name}", "regression",
                note or "shape invariant violated on fresh run"))
        else:
            report.deviations.append(Deviation(
                f"invariant:{name}", "ok", note or "holds"))
    return report


def render_reports(reports: List[CheckReport], verbose: bool = False) -> str:
    lines = [r.render(verbose) for r in reports]
    failed = [r.scenario for r in reports if not r.ok]
    total_reg = sum(len(r.regressions) for r in reports)
    if failed:
        lines.append(f"FAILED: {len(failed)}/{len(reports)} scenario(s) "
                     f"({total_reg} regression(s)): {', '.join(failed)}")
    else:
        lines.append(f"all {len(reports)} scenario(s) within tolerance")
    return "\n".join(lines)
