"""The canonical benchmark scenarios the regression harness tracks.

Each scenario is a deterministic, seconds-scale slice of one experiment
family — small enough for CI, large enough that a latency-model change
shows up in its metrics.  Scenario functions return a
:class:`~repro.perf.harness.ScenarioResult`; the harness handles baselines
and comparison.

Determinism contract: every ``sim``/``count`` metric must be bit-identical
across processes and machines (the simulator is seeded and ties are
sequence-broken), so baselines can live in git.  Anything host-dependent
must be recorded with ``kind="wallclock"``.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional

from ..analysis import invariants as inv
from ..analysis.faults import run_chaos_point, zero_cost_check
from ..cluster import build_extoll_cluster, build_ib_cluster
from ..collectives.bench import build_communicator, run_collective
from ..collectives.comm import CollectiveMode
from ..core import (
    ExtollMode,
    IbMode,
    run_extoll_bandwidth,
    run_extoll_pingpong,
    run_ib_pingpong,
    setup_extoll_connection,
    setup_ib_connection,
)
from ..sim import Simulator
from ..units import KIB, MIB
from .harness import Scenario, ScenarioResult

SCENARIOS: Dict[str, Scenario] = {}


def _register(name: str, description: str, quick: bool = True):
    def deco(fn):
        SCENARIOS[name] = Scenario(name=name, description=description,
                                   run=fn, quick=quick)
        return fn
    return deco


def get_scenarios(names: Optional[Iterable[str]] = None,
                  quick_only: bool = False) -> List[Scenario]:
    """Resolve a scenario selection; unknown names raise ``KeyError`` with
    the valid choices."""
    if names:
        out = []
        for name in names:
            if name not in SCENARIOS:
                raise KeyError(
                    f"unknown scenario {name!r} (choose from: "
                    f"{', '.join(sorted(SCENARIOS))})")
            out.append(SCENARIOS[name])
        return out
    return [s for s in SCENARIOS.values() if s.quick or not quick_only]


def _extoll_point(mode: ExtollMode, size: int, iterations: int = 10,
                  warmup: int = 2):
    cluster = build_extoll_cluster()
    conn = setup_extoll_connection(cluster, max(size, 4 * KIB))
    return run_extoll_pingpong(cluster, conn, mode, size,
                               iterations=iterations, warmup=warmup)


def _ib_point(mode: IbMode, size: int, iterations: int = 10,
              warmup: int = 2):
    cluster = build_ib_cluster()
    location = "host" if mode is IbMode.BUF_ON_HOST else "gpu"
    conn = setup_ib_connection(cluster, max(size, 4 * KIB), location)
    return run_ib_pingpong(cluster, conn, mode, size,
                           iterations=iterations, warmup=warmup)


# -- Fig. 1a: EXTOLL latency ----------------------------------------------------

@_register("extoll-latency",
           "EXTOLL ping-pong latency, all four control-flow modes "
           "(Fig. 1a slice)")
def extoll_latency() -> ScenarioResult:
    res = ScenarioResult()
    points = {}
    for mode in (ExtollMode.DIRECT, ExtollMode.POLL_ON_GPU,
                 ExtollMode.ASSISTED, ExtollMode.HOST_CONTROLLED):
        for size in (64, 4 * KIB, 64 * KIB):
            p = _extoll_point(mode, size)
            points[(mode, size)] = p
            res.metric(f"{mode.value}/{size}B/latency_us", p.latency_us,
                       unit="us")
    res.invariant("fig1-2x-gap", inv.two_x_gap(
        points[(ExtollMode.DIRECT, 64)].latency,
        points[(ExtollMode.HOST_CONTROLLED, 64)].latency))
    res.invariant("devmem-poll-beats-sysmem", inv.faster_than(
        points[(ExtollMode.POLL_ON_GPU, 64)].latency,
        points[(ExtollMode.DIRECT, 64)].latency,
        "pollOnGPU", "direct"))
    return res


# -- Fig. 1b: EXTOLL bandwidth --------------------------------------------------

@_register("extoll-bandwidth",
           "EXTOLL streaming bandwidth incl. the >1MiB drop (Fig. 1b "
           "slice)", quick=False)
def extoll_bandwidth() -> ScenarioResult:
    res = ScenarioResult()
    curves = {}
    for mode in (ExtollMode.DIRECT, ExtollMode.HOST_CONTROLLED):
        curve = []
        for size in (256 * KIB, 1 * MIB, 4 * MIB):
            cluster = build_extoll_cluster()
            conn = setup_extoll_connection(cluster, max(size, 4 * KIB))
            p = run_extoll_bandwidth(cluster, conn, mode, size, count=8)
            curve.append((size, p.mb_per_s))
            res.metric(f"{mode.value}/{size}B/mb_per_s", p.mb_per_s,
                       unit="MB/s")
        curves[mode] = curve
    res.invariant("fig1b-large-message-drop",
                  inv.bandwidth_drops_after_peak(curves[ExtollMode.DIRECT]))
    return res


# -- Fig. 3: poll-to-post ratio -------------------------------------------------

@_register("extoll-poll-ratio",
           "Poll-time vs WR-generation-time, system vs device memory "
           "(Fig. 3 slice)")
def extoll_poll_ratio() -> ScenarioResult:
    res = ScenarioResult()
    ratios = {}
    for mode, label in ((ExtollMode.DIRECT, "sysmem"),
                        (ExtollMode.POLL_ON_GPU, "devmem")):
        for size in (64, 4 * KIB):
            p = _extoll_point(mode, size)
            ratios[(label, size)] = p.poll_to_post_ratio
            res.metric(f"{label}/{size}B/poll_to_post_ratio",
                       p.poll_to_post_ratio, unit="x")
    res.invariant("fig3-sysmem-polling-dominates",
                  inv.sysmem_polling_dominates(ratios[("sysmem", 64)],
                                               ratios[("devmem", 64)]))
    return res


# -- Fig. 4a: InfiniBand latency ------------------------------------------------

@_register("ib-latency",
           "InfiniBand ping-pong latency, all four control-flow modes "
           "(Fig. 4a slice)")
def ib_latency() -> ScenarioResult:
    res = ScenarioResult()
    points = {}
    for mode in (IbMode.BUF_ON_GPU, IbMode.BUF_ON_HOST, IbMode.ASSISTED,
                 IbMode.HOST_CONTROLLED):
        for size in (64, 4 * KIB):
            p = _ib_point(mode, size)
            points[(mode, size)] = p
            res.metric(f"{mode.value}/{size}B/latency_us", p.latency_us,
                       unit="us")
    res.invariant("fig4a-gpu-buffers-beat-host-buffers", inv.faster_than(
        points[(IbMode.BUF_ON_GPU, 64)].latency,
        points[(IbMode.BUF_ON_HOST, 64)].latency,
        "bufOnGPU", "bufOnHost"))
    res.invariant("fig4a-host-control-fastest", inv.faster_than(
        points[(IbMode.HOST_CONTROLLED, 64)].latency,
        min(points[(IbMode.BUF_ON_GPU, 64)].latency,
            points[(IbMode.ASSISTED, 64)].latency),
        "hostControlled", "best GPU-controlled"))
    return res


# -- collectives ----------------------------------------------------------------

@_register("collectives-allreduce",
           "4-node ring all-reduce over put/get, GPU- and host-controlled")
def collectives_allreduce() -> ScenarioResult:
    res = ScenarioResult()
    nodes, size = 4, 64
    for mode in (CollectiveMode.POLL_ON_GPU, CollectiveMode.HOST_CONTROLLED):
        cluster, comm = build_communicator(nodes, size, mode)
        r = run_collective(cluster, comm, "all-reduce", size,
                           iterations=4, warmup=1)
        res.metric(f"{mode.value}/latency_us", r.latency_us, unit="us")
        res.metric(f"{mode.value}/steps", r.steps, kind="count")
        res.invariant(f"{mode.value}/correct", r.correct)
        res.invariant(f"{mode.value}/ring-steps",
                      inv.ring_allreduce_steps(r.steps, nodes))
    # Documentary companion to the latency metrics: the causal layer's
    # exact critical-path composition of the same ring all-reduce, per
    # control mode — the blame table that says WHERE each mode's time
    # goes, not just how much there is.  Lives in ``extra`` (committed
    # with the baseline but never compared) because the shares move with
    # any latency-model change by design.
    from ..causal import analyze_run
    from ..obs.tracer import SpanTracer
    from ..workloads.apps import get_workload
    from ..workloads.generator import WorkloadRun
    from ..workloads.transport import MODES

    composition = {}
    for tmode in MODES:
        sim = Simulator(seed=0)
        tracer = SpanTracer(sim, categories=("causal", "workload"))
        sim.set_tracer(tracer)
        WorkloadRun(get_workload("allreduce"), tmode, nodes=nodes,
                    size=size, requests=1, loop="closed", seed=0,
                    sim=sim).execute()
        analysis = analyze_run(tracer)
        composition[tmode] = {
            "shares_pct": {cat: round(share * 100.0, 3)
                           for cat, share in
                           analysis.blame_shares().items()},
            "path_us": round(sum(p.total for p in analysis.paths) * 1e6,
                             3),
            "hops": sum(len(p.segments) for p in analysis.paths),
        }
    res.extra["critical_path_composition"] = composition
    return res


# -- faults ---------------------------------------------------------------------

@_register("faults-overhead",
           "Reliability cost at zero loss (must be ~free) and recovery "
           "under 5% packet loss")
def faults_overhead() -> ScenarioResult:
    res = ScenarioResult()
    zc = zero_cost_check()
    res.invariant("zero-cost-bit-identical",
                  (zc["ok"], f"bare {zc['bare_latency'] * 1e6:.3f}us vs "
                             f"null-plan {zc['null_latency'] * 1e6:.3f}us"))
    clean, _, _ = run_chaos_point(CollectiveMode.POLL_ON_GPU, 64, loss=0.0)
    res.metric("reliable/zero-loss/latency_us", clean.latency_us, unit="us")
    res.metric("reliable/zero-loss/retransmits", clean.retransmits,
               kind="count")
    res.invariant("zero-loss-no-retransmits",
                  (clean.retransmits == 0,
                   f"{clean.retransmits} retransmits at loss=0"))
    res.invariant("reliability-overhead-bounded", inv.reliability_is_free(
        clean.latency, zc["bare_latency"], max_overhead=0.35))
    lossy, _, _ = run_chaos_point(CollectiveMode.POLL_ON_GPU, 64, loss=0.05)
    res.metric("reliable/5pct-loss/latency_us", lossy.latency_us, unit="us")
    res.metric("reliable/5pct-loss/retransmits", lossy.retransmits,
               kind="count")
    res.metric("reliable/5pct-loss/drops", lossy.drops, kind="count")
    res.invariant("correct-under-loss",
                  (lossy.correct, f"all-reduce result "
                                  f"{'exact' if lossy.correct else 'WRONG'} "
                                  f"at 5% loss ({lossy.drops} drops, "
                                  f"{lossy.retransmits} retransmits)"))
    res.invariant("loss-actually-recovered",
                  (lossy.retransmits > 0 and lossy.latency > clean.latency,
                   f"5% loss: {lossy.retransmits} retransmits, latency "
                   f"{clean.latency_us:.2f} -> {lossy.latency_us:.2f}us"))
    return res


# -- offload engine -------------------------------------------------------------

@_register("engine-latency",
           "Offload-engine ping-pong latency vs dev2dev-direct: baseline, "
           "warp-parallel, batched, all-on")
def engine_latency() -> ScenarioResult:
    from ..engine import EngineConfig, run_engine_pingpong

    res = ScenarioResult()
    variants = [("baseline", EngineConfig.baseline()),
                ("warp", EngineConfig.warp_only()),
                ("batch", EngineConfig.batch_only()),
                ("all", EngineConfig.all_on())]
    points = {}
    for size in (64, 4 * KIB):
        p = _extoll_point(ExtollMode.DIRECT, size)
        points[("direct", size)] = p
        res.metric(f"direct/{size}B/latency_us", p.latency_us, unit="us")
        for name, config in variants:
            cluster = build_extoll_cluster()
            conn = setup_extoll_connection(cluster, max(size, 4 * KIB))
            p = run_engine_pingpong(cluster, conn, size, iterations=10,
                                    warmup=2, config=config)
            points[(name, size)] = p
            res.metric(f"engine-{name}/{size}B/latency_us", p.latency_us,
                       unit="us")
            res.metric(f"engine-{name}/{size}B/post_us", p.post_time * 1e6,
                       unit="us")
    res.invariant("engine-all-beats-direct-64B", inv.faster_than(
        points[("all", 64)].latency, points[("direct", 64)].latency,
        "engine-all", "direct"))
    res.invariant("engine-baseline-matches-direct", inv.counter_reconciles(
        points[("baseline", 64)].latency, points[("direct", 64)].latency,
        "baseline latency", tolerance=0.001))
    res.invariant("warp-parallelism-helps", inv.faster_than(
        points[("warp", 64)].post_time, points[("baseline", 64)].post_time,
        "warp post", "baseline post"))
    return res


@_register("engine-rate",
           "Offload-engine 32-connection message rate vs hostControlled, "
           "with MMIO-coalescing accounting")
def engine_rate() -> ScenarioResult:
    from ..core.modes import RateMethod
    from ..core.message_rate import run_extoll_message_rate
    from ..core.setup import setup_extoll_connections
    from ..engine import EngineConfig, run_engine_message_rate

    res = ScenarioResult()
    connections, per_connection = 32, 40
    cluster = build_extoll_cluster()
    conns = setup_extoll_connections(cluster, 4 * KIB, connections)
    host = run_extoll_message_rate(cluster, conns, RateMethod.HOST_CONTROLLED,
                                   per_connection=per_connection)
    res.metric("hostControlled/mmsgs_per_s", host.messages_per_s / 1e6,
               unit="M/s")
    rates = {}
    for name, config in (("warp", EngineConfig.warp_only()),
                         ("all", EngineConfig.all_on())):
        cluster = build_extoll_cluster()
        conns = setup_extoll_connections(cluster, 4 * KIB, connections)
        point, stats = run_engine_message_rate(cluster, conns, config,
                                               per_connection=per_connection)
        rates[name] = point
        res.metric(f"engine-{name}/mmsgs_per_s", point.messages_per_s / 1e6,
                   unit="M/s")
        res.metric(f"engine-{name}/doorbell_mmio", stats.doorbells,
                   kind="count")
        res.metric(f"engine-{name}/descriptors", stats.wrs, kind="count")
        if name == "all":
            res.invariant("mmio-coalesced", inv.mmio_coalesced(
                stats.doorbells, stats.wrs, config.batch_size,
                stats.timeout_flushes, lanes=connections))
    res.invariant("engine-all-beats-host-controlled", inv.rate_at_least(
        rates["all"].messages_per_s, host.messages_per_s,
        "engine-all msg/s", "hostControlled msg/s"))
    return res


# -- simulator throughput -------------------------------------------------------

@_register("sim-throughput",
           "Simulator work (deterministic event count) and wall-clock "
           "throughput for a reference run")
def sim_throughput() -> ScenarioResult:
    from ..telemetry import TelemetryPlane

    res = ScenarioResult()
    events, walls, walls_telemetry = [], [], []
    bare = inst = plane = None
    # Bare and instrumented reps interleave so machine drift hits both
    # sides equally; the overhead metric compares best against best.
    for _rep in range(5):
        sim = Simulator()
        cluster = build_extoll_cluster(sim=sim)
        conn = setup_extoll_connection(cluster, 4 * KIB)
        t0 = time.perf_counter()
        bare = run_extoll_pingpong(cluster, conn, ExtollMode.DIRECT, 64,
                                   iterations=30, warmup=3)
        walls.append(time.perf_counter() - t0)
        events.append(sim.events_processed)

        # The same reference run under the live telemetry plane at its
        # default cadence: the sampler only reads model state, so the
        # measured point must be bit-identical, and the wall-clock cost
        # must stay small (recorded as an informational wallclock metric,
        # target < 5%).
        sim = Simulator()
        plane = TelemetryPlane(sim)
        cluster = build_extoll_cluster(sim=sim)
        conn = setup_extoll_connection(cluster, 4 * KIB)
        plane.start()
        t0 = time.perf_counter()
        inst = run_extoll_pingpong(cluster, conn, ExtollMode.DIRECT, 64,
                                   iterations=30, warmup=3)
        walls_telemetry.append(time.perf_counter() - t0)
        plane.stop()
    res.metric("sim_events", events[0], kind="count", unit="events")
    res.invariant("deterministic-event-count",
                  (len(set(events)) == 1,
                   f"event counts across {len(events)} repeats: {events}"))
    best = min(walls)
    res.metric("wall_s_best", best, kind="wallclock", unit="s")
    res.metric("wall_s_worst", max(walls), kind="wallclock", unit="s")
    res.metric("events_per_s_best", events[0] / best, kind="wallclock",
               unit="events/s")
    res.invariant("telemetry-non-perturbation",
                  (bare.latency == inst.latency
                   and bare.post_time == inst.post_time
                   and bare.poll_time == inst.poll_time,
                   f"bare {bare.latency * 1e6:.4f}us vs instrumented "
                   f"{inst.latency * 1e6:.4f}us at default cadence"))
    res.metric("telemetry_samples", plane.sampler.ticks, kind="count",
               unit="samples")
    wall_telemetry = min(walls_telemetry)
    res.metric("wall_s_telemetry", wall_telemetry, kind="wallclock",
               unit="s")
    res.metric("telemetry_overhead_pct",
               100.0 * (wall_telemetry - best) / best, kind="wallclock",
               unit="%")
    return res


# -- service-scale workloads ------------------------------------------------------

#: Offered-load grid the workload scenarios sweep (fractions of the
#: closed-loop service rate) — small on purpose: three points bracket the
#: knee without turning a bench run into a campaign.
_WORKLOAD_FRACTIONS = (0.5, 0.9, 1.2)
_WORKLOAD_REQUESTS = 16


def _workload_scenario(workload: str, modes) -> ScenarioResult:
    from ..workloads import saturation_sweep

    res = ScenarioResult()
    sweeps = {}
    for mode in modes:
        sweep = saturation_sweep(workload, mode, nodes=4, size=256,
                                 requests=_WORKLOAD_REQUESTS,
                                 fractions=_WORKLOAD_FRACTIONS, seed=7)
        sweeps[mode] = sweep
        res.metric(f"{mode}/closed_p99_us", sweep.closed.p99 * 1e6,
                   unit="us")
        res.metric(f"{mode}/service_rate_per_s", sweep.base_rate, unit="/s")
        res.metric(f"{mode}/knee_per_s", sweep.knee, unit="/s")
        near = sweep.points[1]      # the 0.9x point
        res.metric(f"{mode}/open0.9_p99_us", near.p99 * 1e6, unit="us")
        res.metric(f"{mode}/open0.9_achieved_per_s", near.achieved,
                   unit="/s")
        res.invariant(f"{mode}/results-exact",
                      (sweep.closed.verified, "every rank's result exact "
                                              "vs host-side expectation"))
        res.invariant(f"{mode}/open-p99-above-closed", inv.at_most(
            sweep.closed.p99, near.p99, "closed-loop p99",
            "open-loop p99 at 0.9x saturation"))
        res.invariant(f"{mode}/keeps-up-below-knee",
                      (sweep.points[0].efficiency >= 0.95,
                       f"efficiency {sweep.points[0].efficiency:.3f} at "
                       f"0.5x saturation"))
        res.invariant(f"{mode}/saturates-past-service-rate",
                      (sweep.points[-1].efficiency < 1.0,
                       f"efficiency {sweep.points[-1].efficiency:.3f} at "
                       f"1.2x saturation"))
    # The committed baseline doubles as the saturation-curve artifact:
    # offered vs achieved per point, knee per mode.
    res.extra["saturation"] = {m: s.as_dict() for m, s in sweeps.items()}
    return res


@_register("workload-trainstep",
           "Data-parallel training step (ring all-reduce + overlap) under "
           "open-loop load: knee + tail vs control mode", quick=False)
def workload_trainstep() -> ScenarioResult:
    return _workload_scenario("trainstep", ("hostControlled", "engine"))


@_register("workload-moe",
           "MoE all-to-all dispatch/combine under open-loop load: knee + "
           "tail vs control mode", quick=False)
def workload_moe() -> ScenarioResult:
    return _workload_scenario("moe", ("hostControlled", "engine"))


@_register("workload-kvcache",
           "KV-cache prefill->decode handover under open-loop load: knee "
           "+ tail vs control mode", quick=False)
def workload_kvcache() -> ScenarioResult:
    return _workload_scenario("kvcache", ("hostControlled", "mpi"))


# -- scale-out fabrics ------------------------------------------------------------

@_register("fabric-allreduce",
           "16-node fat-tree/torus all-reduce: ring vs rh vs tree, "
           "bit-exact across schedules, step counts at closed form")
def fabric_allreduce() -> ScenarioResult:
    from ..fabrics import build_topology, instantiate
    from ..fabrics.collective import expected_phases, expected_steps
    from ..fabrics.collective import run_collective as run_fabric

    res = ScenarioResult()
    n, elems = 16, 4
    for kind in ("fat-tree", "torus"):
        digests = set()
        times = {}
        for algorithm in ("ring", "rh", "tree"):
            sim = Simulator(seed=1)
            inst = instantiate(sim, build_topology(kind, n))
            r = run_fabric(inst, algorithm, elems_per_rank=elems,
                           iterations=3)
            digests.add(r.digest)
            times[algorithm] = r.p50_time
            res.metric(f"{kind}/{algorithm}/p50_us", r.p50_time * 1e6,
                       unit="us")
            res.metric(f"{kind}/{algorithm}/packets", r.packets,
                       kind="count")
            res.invariant(f"{kind}/{algorithm}/correct",
                          (r.correct, "sums exact vs reference"))
            res.invariant(
                f"{kind}/{algorithm}/steps-exact",
                (r.steps == expected_steps(algorithm, n)
                 and r.phases == expected_phases(algorithm, n),
                 f"steps {r.steps} (closed form "
                 f"{expected_steps(algorithm, n)}), phases {r.phases} "
                 f"(closed form {expected_phases(algorithm, n)})"))
        res.invariant(f"{kind}/bit-exact-across-schedules",
                      (len(digests) == 1,
                       f"{len(digests)} distinct result digests across "
                       f"ring/rh/tree"))
        res.invariant(f"{kind}/log-schedules-beat-ring", inv.faster_than(
            min(times["rh"], times["tree"]), times["ring"],
            "best log-depth schedule p50", "ring p50"))
    return res


@_register("fabric-congestion",
           "Credit backpressure: scarce-credit permutation stalls but "
           "completes, credits-off is bit-identical, critpath blames "
           "blocked-on-credit")
def fabric_congestion() -> ScenarioResult:
    from ..fabrics import build_topology, instantiate, run_permutation
    from ..fabrics.collective import run_collective as run_fabric
    from ..fabrics.sweep import SweepConfig, forced_congestion_blame
    from ..fabrics.topology import FabricConfig

    res = ScenarioResult()
    n = 16
    sim = Simulator(seed=1)
    inst = instantiate(sim, build_topology("fat-tree", n),
                       FabricConfig(credits=2))
    t = run_permutation(inst, messages=6, payload=256, seed=1)
    res.metric("permutation/stalls", t.stalls, kind="count")
    res.metric("permutation/time_us", t.time * 1e6, unit="us")
    res.invariant("permutation-completes",
                  (t.completed and not t.deadlocked,
                   f"{n}-host permutation at 2 credits: "
                   f"completed={t.completed} deadlocked={t.deadlocked}"))
    res.invariant("credits-actually-stall",
                  (t.stalls > 0, f"{t.stalls} credit stalls at 2 credits"))

    def ring_run(credits):
        s = Simulator(seed=1)
        i = instantiate(s, build_topology("torus", n),
                        FabricConfig(credits=credits))
        return run_fabric(i, "ring", elems_per_rank=4, iterations=3)

    bare, generous = ring_run(None), ring_run(64)
    res.invariant("zero-cost-bit-identical",
                  (bare.times == generous.times
                   and bare.digest == generous.digest,
                   "credits disabled vs 64 credits: identical times and "
                   "result digest"))
    share = forced_congestion_blame(SweepConfig())
    res.metric("blame/blocked_on_credit_pct", round(share * 100.0, 3),
               unit="%")
    res.invariant("critpath-blames-credit",
                  (share > 0.0,
                   f"blocked-on-credit holds {share * 100.0:.2f}% of the "
                   f"congested ring's critical path"))
    return res


# -- MPI-shaped layer (triggered operations) -------------------------------------

@_register("mpi-latency",
           "Tagged MPI ping-pong across the eager/rendezvous crossover, "
           "CPU-free control path")
def mpi_latency() -> ScenarioResult:
    from ..mpi.bench import run_mpi_pingpong
    from ..mpi.comm import MpiConfig

    res = ScenarioResult()
    config = MpiConfig()
    thr = config.eager_threshold
    points = {}
    for size in (thr // 2, thr, thr + 1, 8 * thr):
        p = run_mpi_pingpong(size, iterations=6, warmup=2, config=config)
        points[size] = p
        res.metric(f"{size}B/latency_us", p.point.latency_us, unit="us")
        res.metric(f"{size}B/rndv_sent", p.rndv_sent, kind="count")
        res.metric(f"{size}B/bar_mmio", p.bar_mmio, kind="count")
    res.invariant("zero-bar-mmio",
                  (all(p.bar_mmio == 0 for p in points.values()),
                   f"BAR crossings by size: "
                   f"{ {s: p.bar_mmio for s, p in points.items()} }"))
    res.invariant("eager-below-threshold",
                  (points[thr].rndv_sent == 0 and points[thr].eager_sent > 0,
                   f"{thr}B went {points[thr].protocol}"))
    res.invariant("rendezvous-above-threshold",
                  (points[thr + 1].rndv_sent > 0
                   and points[thr + 1].eager_sent == 0,
                   f"{thr + 1}B went {points[thr + 1].protocol}"))
    res.invariant("crossover-costs-a-roundtrip", inv.faster_than(
        points[thr].point.latency, points[thr + 1].point.latency,
        f"eager {thr}B", f"rendezvous {thr + 1}B"))
    return res


@_register("mpi-allreduce",
           "Triggered-chain iallreduce vs all three host-assist control "
           "modes: MMIO at or below the engine-batched floor")
def mpi_allreduce() -> ScenarioResult:
    from ..engine import batched_mmio_floor
    from ..mpi.bench import run_mode_allreduce_mmio, run_mpi_allreduce
    from ..obs.tracer import SpanTracer

    res = ScenarioResult()
    nodes, size = 4, 256
    tracer = SpanTracer()
    ar = run_mpi_allreduce(nodes, size, iterations=4, warmup=1,
                           tracer=tracer)
    res.metric("triggered/latency_us", ar.point.latency_us, unit="us")
    res.metric("triggered/chains_fired", ar.chains_fired, kind="count")
    res.metric("triggered/bar_mmio", ar.bar_mmio, kind="count")
    res.invariant("allreduce-exact", (ar.correct, "sums exact vs reference"))
    res.invariant("reconciles-1pct",
                  (bool(ar.reconcile["ok"]),
                   "chains vs spans vs LatencyPoint within 1%"))
    floor = None
    for mode in (CollectiveMode.POLL_ON_GPU, CollectiveMode.DIRECT,
                 CollectiveMode.HOST_CONTROLLED):
        m = run_mode_allreduce_mmio(mode, nodes, size, iterations=4,
                                    warmup=1)
        res.metric(f"{m['mode']}/latency_us", m["latency_us"], unit="us")
        res.metric(f"{m['mode']}/bar_mmio", m["bar_mmio"], kind="count")
        res.invariant(f"{m['mode']}/correct", (m["correct"], "sums exact"))
        floor = batched_mmio_floor(m["wrs_posted"], 8) if floor is None \
            else min(floor, batched_mmio_floor(m["wrs_posted"], 8))
    res.metric("engine_floor", floor, kind="count")
    res.invariant("triggered-at-or-below-engine-floor", inv.at_most(
        ar.bar_mmio, floor, "triggered MMIO", "batched floor"))
    res.invariant("host-assist-above-floor",
                  (ar.bar_mmio == 0, f"triggered BAR MMIO = {ar.bar_mmio}"))
    return res
