"""Cost-attribution profiler: where does a put/get round actually go?

The benchmark drivers time two aggregate phases per iteration (WR
generation and completion polling — Fig. 3's two bars).  The span tracer
records every micro-step underneath.  This module joins the two: it carves
the measured region into the driver's posting/polling windows and then
attributes every simulated nanosecond inside them to one cost component by
interval arithmetic (:mod:`repro.obs.query`):

``wqe-generation`` (or ``host-assist``)
    Time in the posting window not explained by any transport span: the
    thread assembling the descriptor/WQE.  For the assisted modes this is
    the GPU<->host mailbox round plus the host's posting work, so it is
    labeled ``host-assist`` there.
``doorbell-mmio``
    PCIe activity inside the posting window — the BAR store(s) that post
    the descriptor and ring the doorbell (Table II's MMIO writes).
``wire``
    Network-link occupancy (serialization + propagation), wherever it
    falls.
``data-dma``
    DMA engine activity not already counted as wire time — payload staging
    between host and device memory.
``completion-mmio``
    PCIe activity inside the polling window — this is exactly the cost
    Fig. 3 exposes: every poll of a system-memory notification queue is a
    PCIe round trip from the GPU (§V-A3, Table I's sysmem reads).
``completion-polling``
    The polling-window remainder: spin iterations on device memory or
    host L1, scheduler backoff, and the peer's turnaround the pinger sits
    through.

Because the driver's phase spans tile the measured region exactly
(``sum == 2 * latency * iterations`` — enforced by tests/obs), the six
components form an exact partition of end-to-end time, so the profile
*reconciles*: attributed time matches the ``LatencyPoint`` to within
:data:`RECONCILE_TOLERANCE` (in practice, to the float).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.results import LatencyPoint
from ..obs.query import (
    Interval,
    coverage,
    merge,
    overlap,
    phase_windows,
    span_intervals,
    subtract,
)

#: Attributed-vs-measured disagreement allowed before a profile is flagged
#: as failing reconciliation (the ISSUE's 1% acceptance bound; actual
#: disagreement is zero because the phase spans tile the region exactly).
RECONCILE_TOLERANCE = 0.01

#: Canonical row order of a profile.
PHASE_ORDER = ("wqe-generation", "host-assist", "doorbell-mmio", "wire",
               "data-dma", "completion-mmio", "completion-polling")

#: Transport categories attributed with priority inside each window: wire
#: time wins over DMA, DMA over PCIe, so overlapping spans (a DMA driving a
#: PCIe link, a packet on the wire during a DMA) are counted once.
_TRANSPORT_PRIORITY = ("net", "dma", "pcie")

#: Metrics registry entries worth surfacing next to a profile (histograms
#: summarized, counters verbatim) — the Table I/II counter attribution.
_COUNTER_PREFIXES = ("rma.", "ib.", "gpu.", "pcie.", "net.", "fault")


@dataclass(frozen=True)
class PhaseCost:
    """One attributed component, totaled over the measured iterations."""

    name: str
    seconds: float
    share: float        # fraction of the measured end-to-end time

    @property
    def us(self) -> float:
        return self.seconds * 1e6


@dataclass
class ModeProfile:
    """The full attribution of one (fabric, mode, size) measurement."""

    fabric: str
    mode: str
    size: int
    iterations: int
    point: LatencyPoint
    phases: List[PhaseCost]
    counters: Dict[str, object] = field(default_factory=dict)

    @property
    def e2e(self) -> float:
        """Measured end-to-end seconds: the full ping-pong region (two
        half-round-trips per iteration)."""
        return 2.0 * self.point.latency * self.iterations

    @property
    def attributed(self) -> float:
        return sum(p.seconds for p in self.phases)

    @property
    def reconciliation_error(self) -> float:
        """|attributed - measured| / measured."""
        if self.e2e <= 0:
            return float("inf")
        return abs(self.attributed - self.e2e) / self.e2e

    @property
    def reconciles(self) -> bool:
        return self.reconciliation_error <= RECONCILE_TOLERANCE

    def phase(self, name: str) -> PhaseCost:
        for p in self.phases:
            if p.name == name:
                return p
        return PhaseCost(name, 0.0, 0.0)

    def per_iteration_us(self, name: str) -> float:
        return self.phase(name).us / self.iterations

    def to_dict(self) -> dict:
        return {
            "fabric": self.fabric, "mode": self.mode, "size": self.size,
            "iterations": self.iterations, "point": self.point.to_dict(),
            "phases": [{"name": p.name, "us": p.us, "share": p.share,
                        "us_per_iteration": p.us / self.iterations}
                       for p in self.phases],
            "e2e_us": self.e2e * 1e6,
            "attributed_us": self.attributed * 1e6,
            "reconciliation_error": self.reconciliation_error,
            "reconciles": self.reconciles,
            "counters": self.counters,
        }


def _attribute_window(windows: Sequence[Interval],
                      transport: Dict[str, List[Interval]],
                      mmio_label: str, rest_label: str,
                      ) -> List[Tuple[str, float]]:
    """Split ``windows`` into wire / data-dma / mmio / remainder by
    priority: each transport category only claims time no higher-priority
    category already explained."""
    claimed: List[Interval] = []
    out: List[Tuple[str, float]] = []
    labels = {"net": "wire", "dma": "data-dma", "pcie": mmio_label}
    for category in _TRANSPORT_PRIORITY:
        inside = overlap(transport[category], windows)
        fresh = subtract(inside, claimed)
        out.append((labels[category], coverage(fresh)))
        claimed = merge(list(claimed) + list(fresh))
    out.append((rest_label, coverage(subtract(list(windows), claimed))))
    return out


def attribute_phases(tracer, mode: str, track: str = "ping",
                     ) -> Dict[str, float]:
    """Interval-attribute one traced ping-pong into the six cost
    components; returns ``{phase name: seconds}`` (totals over all
    measured iterations)."""
    posting = merge(span_intervals(tracer, category="phase",
                                   name="wr-generation", track=track))
    polling = merge(span_intervals(tracer, category="phase",
                                   name="polling", track=track))
    transport = {c: merge(span_intervals(tracer, category=c))
                 for c in _TRANSPORT_PRIORITY}
    rest_label = "host-assist" if "assisted" in mode else "wqe-generation"
    costs: Dict[str, float] = {}
    for label, seconds in (
            _attribute_window(posting, transport, "doorbell-mmio", rest_label)
            + _attribute_window(polling, transport, "completion-mmio",
                                "completion-polling")):
        costs[label] = costs.get(label, 0.0) + seconds
    return costs


def _interesting_counters(tracer) -> Dict[str, object]:
    snap = tracer.metrics.snapshot()  # flat: name -> int | summary dict
    return {name: value for name, value in snap.items()
            if name.startswith(_COUNTER_PREFIXES)}


def profile_from_trace(tracer, point: LatencyPoint, fabric: str, mode: str,
                       iterations: int) -> ModeProfile:
    """Build a :class:`ModeProfile` from an already-recorded trace."""
    costs = attribute_phases(tracer, mode)
    e2e = 2.0 * point.latency * iterations
    phases = [PhaseCost(name, costs[name],
                        costs[name] / e2e if e2e > 0 else 0.0)
              for name in PHASE_ORDER if name in costs]
    return ModeProfile(fabric=fabric, mode=mode, size=point.size,
                       iterations=iterations, point=point, phases=phases,
                       counters=_interesting_counters(tracer))


def profile_pingpong(fabric: str, mode: str, size: int,
                     iterations: int = 10, warmup: int = 2,
                     tracer=None) -> ModeProfile:
    """Run one traced ping-pong and attribute its cost.  ``mode`` is the
    CLI spelling (e.g. ``dev2dev-direct``, ``bufOnGPU``)."""
    from ..obs.cli import run_traced_pingpong  # deferred: avoids CLI deps
    tracer, point = run_traced_pingpong(fabric, mode, size,
                                        iterations, warmup, tracer)
    return profile_from_trace(tracer, point, fabric, mode, iterations)


def render_profile(profile: ModeProfile) -> str:
    """Fixed-width table: one row per cost component, per-iteration and
    total, plus the reconciliation verdict."""
    title = (f"{profile.fabric} {profile.mode} size={profile.size}B "
             f"x{profile.iterations} iterations")
    lines = [title, "=" * len(title),
             "phase".ljust(20) + "per-iter".rjust(12) + "total".rjust(12)
             + "share".rjust(9)]
    for p in profile.phases:
        lines.append(p.name.ljust(20)
                     + f"{p.us / profile.iterations:10.3f}us"
                     + f"{p.us:10.3f}us"
                     + f"{p.share * 100:7.2f}%")
    lines.append("-" * len(lines[2]))
    lines.append("attributed".ljust(20)
                 + f"{profile.attributed * 1e6 / profile.iterations:10.3f}us"
                 + f"{profile.attributed * 1e6:10.3f}us"
                 + f"{sum(p.share for p in profile.phases) * 100:7.2f}%")
    lines.append("measured e2e".ljust(20)
                 + f"{profile.e2e * 1e6 / profile.iterations:10.3f}us"
                 + f"{profile.e2e * 1e6:10.3f}us")
    lines.append(f"reconciliation: rel err "
                 f"{profile.reconciliation_error * 100:.4f}% "
                 f"({'OK' if profile.reconciles else 'MISMATCH'}, "
                 f"tolerance {RECONCILE_TOLERANCE * 100:g}%)")
    ratio = profile.point.poll_to_post_ratio
    if ratio == ratio and ratio != float("inf"):
        lines.append(f"poll/post ratio (Fig. 3): {ratio:.2f}x")
    return "\n".join(lines)
