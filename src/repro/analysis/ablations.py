"""Ablations of the design choices §VI calls out.

Each function toggles exactly one mechanism and reports the effect,
substantiating the paper's three claims for future put/get interfaces:
small footprint, thread-collaborative interfaces, minimal PCIe control
traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..cluster import build_extoll_cluster, build_ib_cluster
from ..core import (
    ExtollMode,
    IbMode,
    RateMethod,
    run_extoll_bandwidth,
    run_extoll_pingpong,
    run_extoll_message_rate,
    run_ib_pingpong,
    setup_extoll_connection,
    setup_extoll_connections,
    setup_ib_connection,
)
from ..core.gpu_verbs import gpu_post_send
from ..ib.wqe import (
    post_send_instruction_cost,
    post_send_instruction_cost_static_optimized,
)
from ..node import NodeConfig
from ..pcie import FabricConfig
from ..units import KIB, MIB


@dataclass
class AblationResult:
    name: str
    baseline: float
    variant: float
    unit: str
    description: str

    @property
    def improvement(self) -> float:
        """baseline / variant (>1 means the variant is better/faster)."""
        return self.baseline / self.variant if self.variant else float("inf")


def ablate_notification_placement(size: int = 1 * KIB,
                                  iterations: int = 20) -> AblationResult:
    """§VI claim 1/3: EXTOLL's kernel-pinned notification queues force PCIe
    polls.  Compare dev2dev-direct (notifications in host memory) against
    dev2dev-pollOnGPU (completion signal observed in device memory) — the
    closest realizable 'move the signal into GPU memory' variant."""
    lat = {}
    for mode in (ExtollMode.DIRECT, ExtollMode.POLL_ON_GPU):
        cluster = build_extoll_cluster()
        conn = setup_extoll_connection(cluster, max(size, 4 * KIB))
        lat[mode] = run_extoll_pingpong(cluster, conn, mode, size,
                                        iterations=iterations).latency
    return AblationResult(
        name="notification-placement",
        baseline=lat[ExtollMode.DIRECT],
        variant=lat[ExtollMode.POLL_ON_GPU],
        unit="s (half-RTT latency)",
        description="completion signal in host memory vs device memory",
    )


def ablate_endianness_conversion(size: int = 256,
                                 iterations: int = 20) -> Dict[str, object]:
    """§V-B3: the paper pre-converts constant WQE fields to big-endian.
    Measure GPU post cost and ping-pong latency with the full conversion
    vs the statically-optimized one."""
    results: Dict[str, object] = {
        "full_conversion_instructions": post_send_instruction_cost(),
        "optimized_instructions": post_send_instruction_cost_static_optimized(),
    }
    lat = {}
    for optimized in (False, True):
        cluster = build_ib_cluster()
        conn = setup_ib_connection(cluster, max(size, 4 * KIB), "gpu")
        # Patch the posting path: wrap gpu_post_send with the chosen flavor
        # by running the ping-pong with a one-off mode below.
        from ..core import pingpong as pp

        original = pp.gpu_post_send

        def patched(ctx, hca, qp, wqe, idx, optimized=optimized):
            return original(ctx, hca, qp, wqe, idx, optimized=optimized)

        pp.gpu_post_send = patched
        try:
            point = pp.run_ib_pingpong(cluster, conn, IbMode.BUF_ON_GPU, size,
                                       iterations=iterations)
        finally:
            pp.gpu_post_send = original
        lat["optimized" if optimized else "full"] = point.latency
    results["full_conversion_latency"] = lat["full"]
    results["optimized_latency"] = lat["optimized"]
    return results


def ablate_p2p_pathology(size: int = 4 * MIB, count: int = 8) -> AblationResult:
    """Figs. 1b/4b: the >1 MiB bandwidth drop comes from the PCIe peer-to-peer
    read pathology; disabling the model removes the drop."""
    bw = {}
    for enabled in (True, False):
        node_cfg = NodeConfig(pcie=FabricConfig(p2p_pathology_enabled=enabled))
        cluster = build_extoll_cluster(node_cfg)
        conn = setup_extoll_connection(cluster, size)
        bw[enabled] = run_extoll_bandwidth(
            cluster, conn, ExtollMode.HOST_CONTROLLED, size, count=count
        ).mb_per_s
    return AblationResult(
        name="p2p-read-pathology",
        baseline=bw[True],
        variant=bw[False],
        unit="MB/s at 4 MiB",
        description="P2P read degradation on vs off",
    )


def ablate_connection_sharing(connections: int = 8,
                              per_connection: int = 60) -> AblationResult:
    """§VI claim 2: single-thread interfaces serialize.  Compare N blocks on
    N private connections against N blocks funneled through ONE CPU proxy
    (the assisted mode — the sharing structure the paper shows flat-lining)."""
    cluster = build_extoll_cluster()
    conns = setup_extoll_connections(cluster, 4 * KIB, connections)
    private = run_extoll_message_rate(cluster, conns, RateMethod.BLOCKS,
                                      per_connection=per_connection)
    cluster2 = build_extoll_cluster()
    conns2 = setup_extoll_connections(cluster2, 4 * KIB, connections)
    shared = run_extoll_message_rate(cluster2, conns2, RateMethod.ASSISTED,
                                     per_connection=per_connection)
    return AblationResult(
        name="connection-sharing",
        baseline=shared.messages_per_s,
        variant=private.messages_per_s,
        unit="msgs/s",
        description=f"{connections} blocks through one proxy vs private connections",
    )


def ablate_future_interface(size: int = 256,
                            iterations: int = 20) -> AblationResult:
    """§VI wholesale: wide (thread-collaborative) posting + device-resident
    notification queues vs today's dev2dev-direct, same semantics."""
    from ..core import (
        run_future_extoll_pingpong,
        setup_future_extoll_connection,
    )

    cluster = build_extoll_cluster()
    conn = setup_extoll_connection(cluster, max(size, 4 * KIB))
    today = run_extoll_pingpong(cluster, conn, ExtollMode.DIRECT, size,
                                iterations=iterations).latency
    cluster2 = build_extoll_cluster()
    conn2 = setup_future_extoll_connection(cluster2, max(size, 4 * KIB))
    future = run_future_extoll_pingpong(cluster2, conn2, size,
                                        iterations=iterations).latency
    return AblationResult(
        name="future-interface",
        baseline=today,
        variant=future,
        unit="s (half-RTT latency)",
        description="today's scalar+host-queue API vs the §VI proposal",
    )


def ablate_asic_nic(size: int = 1 * KIB, iterations: int = 15) -> AblationResult:
    """§V: 'We expect future ASIC implementations to improve performance
    significantly' — swap the 157 MHz FPGA card for the projected ASIC."""
    from ..extoll import asic_config

    cluster = build_extoll_cluster()
    conn = setup_extoll_connection(cluster, max(size, 4 * KIB))
    fpga = run_extoll_pingpong(cluster, conn, ExtollMode.HOST_CONTROLLED,
                               size, iterations=iterations).latency
    cluster2 = build_extoll_cluster(nic_config=asic_config())
    conn2 = setup_extoll_connection(cluster2, max(size, 4 * KIB))
    asic = run_extoll_pingpong(cluster2, conn2, ExtollMode.HOST_CONTROLLED,
                               size, iterations=iterations).latency
    return AblationResult(
        name="asic-nic",
        baseline=fpga,
        variant=asic,
        unit="s (half-RTT latency)",
        description="FPGA Galibier vs projected 700 MHz/128-bit ASIC",
    )


def run_all_ablations() -> List[object]:
    return [
        ablate_notification_placement(),
        ablate_endianness_conversion(),
        ablate_p2p_pathology(),
        ablate_connection_sharing(),
        ablate_future_interface(),
        ablate_asic_nic(),
    ]
