"""Shape invariants — the qualitative claims of the paper's figures.

The benchmark-regression harness (:mod:`repro.perf`) pins every scenario's
raw numbers with tolerance bands, but raw numbers drift legitimately when a
cost model is retuned.  What must NEVER drift are the *shapes* the paper is
about: GPU-posted puts cost roughly twice a host-posted put (Fig. 1/2),
polling on system memory dwarfs polling on device memory (Fig. 3 / Table I),
bandwidth sags once messages outgrow the pinned staging window (Fig. 1b),
and a ring all-reduce takes exactly ``2*(N-1)`` steps.

Each helper here answers one such question with a ``(ok, detail)`` pair so
scenario baselines can store the verdict and the check CLI can print *why*
a shape broke.  They are deliberately tiny pure functions — no simulator
imports — usable from scenarios, tests, and notebooks alike.
"""

from __future__ import annotations

from typing import Sequence, Tuple

Verdict = Tuple[bool, str]


def within(value: float, lo: float, hi: float, label: str = "value") -> Verdict:
    """Is ``value`` inside the closed band ``[lo, hi]``?"""
    ok = lo <= value <= hi
    return ok, f"{label}={value:.4g} {'in' if ok else 'OUTSIDE'} [{lo:g}, {hi:g}]"


def two_x_gap(gpu_latency: float, host_latency: float,
              lo: float = 1.5, hi: float = 3.0) -> Verdict:
    """The paper's headline: a GPU-controlled put/get round costs about
    twice a host-controlled one (§V-A1, Fig. 1a).  ``lo``/``hi`` bound the
    acceptable ratio — a model retune may move it, but if GPU posting ever
    becomes *cheaper* than host posting the reproduction is broken."""
    if host_latency <= 0:
        return False, "host latency is zero — gap undefined"
    ratio = gpu_latency / host_latency
    ok = lo <= ratio <= hi
    return ok, (f"gpu/host latency ratio {ratio:.2f}x "
                f"{'in' if ok else 'OUTSIDE'} [{lo:g}x, {hi:g}x]")


def faster_than(fast: float, slow: float,
                fast_label: str = "fast", slow_label: str = "slow") -> Verdict:
    """Strict ordering between two latencies (e.g. Fig. 4a: bufOnGPU beats
    bufOnHost for small messages because polling stays on the GPU die)."""
    ok = fast < slow
    return ok, (f"{fast_label} {fast:.4g} "
                f"{'<' if ok else '>='} {slow_label} {slow:.4g}")


def bandwidth_drops_after_peak(mb_per_s_by_size: Sequence[Tuple[int, float]],
                               min_drop: float = 0.02) -> Verdict:
    """Fig. 1b/4b: bandwidth rises with message size, peaks, then *drops*
    for multi-MiB messages (the >1 MiB staging/registration penalty).  The
    last point must sit at least ``min_drop`` below the peak."""
    if len(mb_per_s_by_size) < 2:
        return False, "need at least two (size, MB/s) points"
    points = sorted(mb_per_s_by_size)
    peak_size, peak = max(points, key=lambda p: p[1])
    last_size, last = points[-1]
    if peak_size == last_size:
        return False, (f"bandwidth still climbing at {last_size}B "
                       f"({last:.1f} MB/s) — no large-message drop")
    drop = 1.0 - last / peak
    ok = drop >= min_drop
    return ok, (f"peak {peak:.1f} MB/s @ {peak_size}B, last {last:.1f} MB/s "
                f"@ {last_size}B ({drop * 100:.1f}% drop, need "
                f">= {min_drop * 100:g}%)")


def sysmem_polling_dominates(sysmem_ratio: float, devmem_ratio: float,
                             min_sysmem: float = 3.0) -> Verdict:
    """Fig. 3 / §V-A3: the poll-to-post ratio when completions land in
    system memory must exceed the device-memory ratio AND stay large in
    absolute terms (the paper measures ~10x; the model reproduces the
    multiple-x regime, bounded below by ``min_sysmem``)."""
    ok = sysmem_ratio > devmem_ratio and sysmem_ratio >= min_sysmem
    return ok, (f"poll/post sysmem {sysmem_ratio:.2f}x vs devmem "
                f"{devmem_ratio:.2f}x (need sysmem > devmem and "
                f">= {min_sysmem:g}x)")


def ring_allreduce_steps(steps: int, nodes: int) -> Verdict:
    """A ring all-reduce performs exactly ``2*(N-1)`` point-to-point sends
    per rank — reduce-scatter plus all-gather."""
    expected = 2 * (nodes - 1)
    ok = steps == expected
    return ok, f"steps={steps}, expected 2*(N-1)={expected} for N={nodes}"


def rate_at_least(rate: float, floor: float, rate_label: str = "rate",
                  floor_label: str = "floor") -> Verdict:
    """Throughput ordering: ``rate`` must meet or beat ``floor`` (e.g. the
    offload engine's 32-connection message rate vs dev2dev-hostControlled
    — losing to the CPU proxy would defeat the engine's purpose)."""
    ok = rate >= floor
    return ok, (f"{rate_label} {rate:.4g} "
                f"{'>=' if ok else '<'} {floor_label} {floor:.4g}")


def at_most(value: float, ceiling: float, value_label: str = "value",
            ceiling_label: str = "ceiling") -> Verdict:
    """Ordering toward zero: ``value`` must not exceed ``ceiling`` (e.g.
    the triggered layer's host-side MMIO count vs the offload engine's
    batched floor — the whole point of counter-fired chains is to sit AT OR
    BELOW what even perfect coalescing can reach)."""
    ok = value <= ceiling
    return ok, (f"{value_label} {value:.4g} "
                f"{'<=' if ok else 'EXCEEDS'} {ceiling_label} {ceiling:.4g}")


def mmio_coalesced(doorbells: int, descriptors: int, batch_size: int,
                   timeout_flushes: int = 0, lanes: int = 1) -> Verdict:
    """Doorbell coalescing's defining bound: posting N descriptors with
    batches of ``batch_size`` may ring at most ``ceil(N / batch_size)``
    doorbells plus one per timeout-forced flush — and, since batches never
    span connections, one extra partial-batch tail per additional lane
    (``sum_c ceil(N_c/B) <= ceil(N/B) + L - 1``).  More means the batcher
    leaked MMIO writes; the configured batch factor did not materialize."""
    if batch_size < 1:
        return False, f"batch_size must be >= 1, got {batch_size}"
    if lanes < 1:
        return False, f"lanes must be >= 1, got {lanes}"
    bound = -(-descriptors // batch_size) + timeout_flushes + lanes - 1
    ok = doorbells <= bound
    return ok, (f"{doorbells} doorbells for {descriptors} descriptors "
                f"over {lanes} lane(s) {'<=' if ok else 'EXCEEDS'} "
                f"ceil(N/{batch_size})+{timeout_flushes} timeouts"
                f"+{lanes - 1} tails = {bound}")


def counter_reconciles(observed: float, expected: float,
                       label: str = "counter",
                       tolerance: float = 0.01) -> Verdict:
    """Driver-side accounting vs the instrumented hardware counter/trace:
    the two views of the same events must agree within ``tolerance``
    relative error (exactly, when ``expected`` is zero)."""
    if expected == 0:
        ok = observed == 0
        return ok, f"{label}: observed {observed:g}, expected exactly 0"
    err = abs(observed - expected) / abs(expected)
    ok = err <= tolerance
    return ok, (f"{label}: observed {observed:g} vs expected {expected:g} "
                f"({err * 100:.2f}% off, allowed {tolerance * 100:g}%)")


def reliability_is_free(reliable_latency: float, bare_latency: float,
                        max_overhead: float = 0.10) -> Verdict:
    """At zero loss the retransmission engines may cost at most
    ``max_overhead`` relative latency (sequence headers + ACK traffic);
    anything more means the fault layer is taxing the fast path."""
    if bare_latency <= 0:
        return False, "bare latency is zero — overhead undefined"
    overhead = reliable_latency / bare_latency - 1.0
    ok = overhead <= max_overhead
    return ok, (f"reliable/bare overhead {overhead * 100:+.2f}% "
                f"(allowed <= {max_overhead * 100:g}%)")
