"""Chaos-sweep experiment drivers: collectives under injected faults.

Three questions, answered with data:

* **Correctness under faults** — with the reliability engines armed, does
  every collective still produce the exact expected result while the fault
  injector drops/corrupts/delays packets underneath it?
* **Zero cost when idle** — does attaching ``FaultPlan.none()`` (and the
  fault layer existing at all) leave a fault-free run's latency
  *bit-identical*?
* **Graceful degradation** — does goodput fall and latency rise
  monotonically (within noise) as the loss rate grows, rather than
  collapsing?

Every run threads its randomness through seeded streams
(:class:`~repro.sim.Simulator` seed x :class:`~repro.faults.FaultPlan`
seed), so any chaos point can be replayed bit-identically from its
parameters alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from ..collectives.bench import build_communicator, run_collective
from ..collectives.comm import CollectiveMode
from ..faults import FaultInjector, FaultPlan, ReliabilityConfig
from ..sim import Simulator

#: Latency may wobble this much between loss levels before the monotonic
#: degradation check calls it a violation (retransmission timing is bursty
#: at low loss: one unlucky RTO dominates a short run).
MONOTONIC_TOLERANCE = 0.25

#: Traced retransmit instants must agree with the engines' counters.
RECONCILE_TOLERANCE = 0.01


@dataclass(frozen=True)
class ChaosPoint:
    """One (mode, size, loss) measurement of a collective under faults."""

    op: str
    mode: str
    nodes: int
    size: int                  # payload bytes per point-to-point message
    loss: float                # per-packet drop probability
    corrupt: float             # per-packet corruption probability
    correct: bool
    latency: float             # one full operation, seconds
    goodput: float             # MB/s of payload all ranks injected
    retransmits: int
    ack_replays: int
    drops: int                 # injector: probabilistic losses
    corruptions: int
    seed: int

    @property
    def latency_us(self) -> float:
        return self.latency * 1e6

    def degradation(self, baseline: "ChaosPoint") -> float:
        """Latency multiplier over the loss-free point."""
        return (self.latency / baseline.latency
                if baseline.latency > 0 else float("inf"))


def run_chaos_point(mode: CollectiveMode, size: int, loss: float,
                    corrupt: float = 0.0, nodes: int = 4,
                    op: str = "all-reduce", iterations: int = 4,
                    warmup: int = 1, seed: int = 1,
                    plan_seed: int = 1, slots: int = 16,
                    reliability_config: Optional[ReliabilityConfig] = None,
                    tracer=None, sim: Optional[Simulator] = None,
                    on_setup=None):
    """One collective under one fault level; returns
    ``(ChaosPoint, Communicator, FaultInjector)``.

    Pass ``sim`` to supply a pre-built simulator (e.g. one carrying a live
    telemetry plane; ``seed`` is then ignored in its favor), and
    ``on_setup(sim, cluster, comm, injector)`` to hook observers up after
    wiring but before the measured run starts.
    """
    if sim is None:
        sim = Simulator(seed=seed, tracer=tracer)
    else:
        seed = sim.seed
    cluster, comm = build_communicator(
        nodes, size, mode, sim=sim, slots=slots, reliable=True,
        reliability_config=reliability_config)
    plan = (FaultPlan.uniform(loss=loss, corrupt=corrupt, seed=plan_seed)
            if (loss or corrupt) else FaultPlan.none())
    injector = FaultInjector(sim, plan).attach(cluster.net)
    if on_setup is not None:
        on_setup(sim, cluster, comm, injector)
    result = run_collective(cluster, comm, op, size,
                            iterations=iterations, warmup=warmup)
    comm.check_reliability_errors()
    point = ChaosPoint(
        op=op, mode=mode.value, nodes=nodes, size=size, loss=loss,
        corrupt=corrupt, correct=result.correct,
        latency=result.point.latency, goodput=result.bandwidth.mb_per_s,
        retransmits=comm.retransmits,
        ack_replays=sum(e.ack_replays for e in comm.reliability_engines),
        drops=injector.drops, corruptions=injector.corruptions, seed=seed)
    return point, comm, injector


def chaos_sweep(loss_rates: Sequence[float], sizes: Sequence[int],
                modes: Iterable[CollectiveMode], nodes: int = 4,
                op: str = "all-reduce", iterations: int = 4,
                warmup: int = 1, seed: int = 1,
                corrupt_ratio: float = 0.5) -> List[ChaosPoint]:
    """The full grid: loss rate x message size x control mode.  Each point
    gets a fresh cluster; ``corrupt_ratio`` scales the corruption
    probability off the loss rate (corruption IS loss after the CRC check,
    so the two stress the same machinery at different layers)."""
    points = []
    for mode in modes:
        for size in sizes:
            for loss in loss_rates:
                point, _, _ = run_chaos_point(
                    mode, size, loss, corrupt=loss * corrupt_ratio,
                    nodes=nodes, op=op, iterations=iterations,
                    warmup=warmup, seed=seed)
                points.append(point)
    return points


# -- checks ---------------------------------------------------------------------

def zero_cost_check(mode: CollectiveMode = CollectiveMode.POLL_ON_GPU,
                    size: int = 64, nodes: int = 4, op: str = "all-reduce",
                    iterations: int = 4, warmup: int = 1,
                    seed: int = 1) -> dict:
    """A fault-free run with ``FaultPlan.none()`` attached (but without the
    reliability engines) must be *bit-identical* in latency and final
    simulated time to a run that never imports the fault layer."""

    def measure(with_null_plan: bool):
        sim = Simulator(seed=seed)
        cluster, comm = build_communicator(nodes, size, mode, sim=sim)
        if with_null_plan:
            FaultInjector(sim, FaultPlan.none()).attach(cluster.net)
        result = run_collective(cluster, comm, op, size,
                                iterations=iterations, warmup=warmup)
        return result.point.latency, sim.now, result.correct

    bare_latency, bare_end, bare_ok = measure(False)
    null_latency, null_end, null_ok = measure(True)
    return {
        "bare_latency": bare_latency, "null_latency": null_latency,
        "identical": (bare_latency == null_latency and bare_end == null_end),
        "correct": bare_ok and null_ok,
        "ok": (bare_latency == null_latency and bare_end == null_end
               and bare_ok and null_ok),
    }


def monotonic_check(points: Sequence[ChaosPoint],
                    tolerance: float = MONOTONIC_TOLERANCE) -> dict:
    """Within each (mode, size) series, latency must not *improve* as loss
    grows (beyond ``tolerance``), and goodput must not improve either —
    i.e. faults degrade service, they never speed it up."""
    violations = []
    series = {}
    for p in sorted(points, key=lambda p: (p.mode, p.size, p.loss)):
        series.setdefault((p.mode, p.size), []).append(p)
    for (mode, size), run in series.items():
        for prev, cur in zip(run, run[1:]):
            if cur.latency < prev.latency * (1.0 - tolerance):
                violations.append(
                    f"{mode}/{size}B: latency improved "
                    f"{prev.latency_us:.2f}us@loss={prev.loss:g} -> "
                    f"{cur.latency_us:.2f}us@loss={cur.loss:g}")
            if cur.goodput > prev.goodput * (1.0 + tolerance):
                violations.append(
                    f"{mode}/{size}B: goodput improved "
                    f"{prev.goodput:.1f}MB/s@loss={prev.loss:g} -> "
                    f"{cur.goodput:.1f}MB/s@loss={cur.loss:g}")
    return {"violations": violations, "ok": not violations}


def reconcile_retransmits(tracer, comm) -> dict:
    """The chaos harness's books must balance: ``fault/retransmit``
    instants in the Chrome trace vs the reliability engines' counters,
    within :data:`RECONCILE_TOLERANCE`."""
    traced = sum(1 for i in tracer.instants
                 if i.category == "fault" and i.name == "retransmit")
    counted = comm.retransmits
    denom = max(counted, 1)
    rel_err = abs(traced - counted) / denom
    return {"traced": traced, "counted": counted, "rel_err": rel_err,
            "ok": rel_err <= RECONCILE_TOLERANCE}


# -- rendering -------------------------------------------------------------------

def render_chaos(points: Sequence[ChaosPoint]) -> str:
    """Fixed-width table of chaos points, with degradation vs the loss-free
    point of each (mode, size) series."""
    baselines = {}
    for p in points:
        if p.loss == 0 and p.corrupt == 0:
            baselines[(p.mode, p.size)] = p
    header = ("mode".ljust(20) + "size".rjust(6) + "loss".rjust(7)
              + "latency".rjust(12) + "x base".rjust(8)
              + "goodput".rjust(11) + "retx".rjust(6) + "drops".rjust(7)
              + "  ok")
    lines = [header, "-" * len(header)]
    for p in points:
        base = baselines.get((p.mode, p.size))
        degr = f"{p.degradation(base):6.2f}x" if base else "      -"
        lines.append(
            p.mode.ljust(20) + f"{p.size}".rjust(6) + f"{p.loss:.3f}".rjust(7)
            + f"{p.latency_us:10.3f}us" + degr.rjust(8)
            + f"{p.goodput:9.1f}MB" + f"{p.retransmits}".rjust(6)
            + f"{p.drops + p.corruptions}".rjust(7)
            + ("   OK" if p.correct else "   FAIL"))
    return "\n".join(lines)
