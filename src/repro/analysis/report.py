"""Render a full reproduction report (all figures and tables) as text.

``python -m repro.analysis.report [--scale S]`` regenerates every result the
paper reports and prints them in the paper's layout.
"""

from __future__ import annotations

import argparse
import sys
from typing import TextIO

from ..core import (
    render_bandwidth_table,
    render_counter_table,
    render_latency_table,
    render_rate_table,
)
from . import figures, tables
from ..units import format_size


def render_fig3(series_list, title: str) -> str:
    sizes = sorted({p.size for s in series_list for p in s.points})
    lines = [title, "=" * len(title)]
    lines.append("size".rjust(10) + "".join(s.label.rjust(18) for s in series_list))
    for size in sizes:
        row = format_size(size).rjust(10)
        for s in series_list:
            p = s.by_x().get(size)
            row += (f"{p.poll_to_post_ratio:.1f}x" if p else "-").rjust(18)
        lines.append(row)
    return "\n".join(lines)


def generate_report(scale: float = 1.0, out: TextIO = sys.stdout) -> None:
    def emit(text: str) -> None:
        out.write(text + "\n\n")

    emit(render_latency_table(figures.fig1a_extoll_latency(scale),
                              "Fig. 1a — EXTOLL ping-pong latency"))
    emit(render_bandwidth_table(figures.fig1b_extoll_bandwidth(scale),
                                "Fig. 1b — EXTOLL streaming bandwidth"))
    emit(render_rate_table(figures.fig2_extoll_message_rate(scale),
                           "Fig. 2 — EXTOLL message rate (64 B)"))
    emit(render_counter_table(list(tables.table1_extoll_polling()),
                              "Table I — EXTOLL polling counters (100 iters, 1 KiB)"))
    emit(render_fig3(figures.fig3_polling_ratio(scale),
                     "Fig. 3 — polling time / WR generation time"))
    emit(render_latency_table(figures.fig4a_ib_latency(scale),
                              "Fig. 4a — InfiniBand ping-pong latency"))
    emit(render_bandwidth_table(figures.fig4b_ib_bandwidth(scale),
                                "Fig. 4b — InfiniBand streaming bandwidth"))
    emit(render_rate_table(figures.fig5_ib_message_rate(scale),
                           "Fig. 5 — InfiniBand message rate (64 B)"))
    emit(render_counter_table(list(tables.table2_ib_buffers()),
                              "Table II — InfiniBand buffer-placement counters"))
    ops = tables.single_op_costs()
    emit("Single-operation instruction counts (§V-B3)\n"
         "===========================================\n"
         f"ibv_post_send : {ops['ibv_post_send']}  (paper: 442)\n"
         f"ibv_poll_cq   : {ops['ibv_poll_cq']}  (paper: 283)\n"
         f"EXTOLL post   : {ops['extoll_post']}  (paper: 'a few tens')")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5,
                        help="parameter-grid scale (1.0 = paper-sized)")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="also record every simulator into a Chrome "
                             "trace-event JSON file at PATH")
    args = parser.parse_args(argv)
    if args.trace:
        from ..obs import SpanTracer, write_chrome_trace
        from ..sim import set_default_tracer
        # The full report runs dozens of simulations; cap the retained spans
        # so the trace stays loadable (overflow is counted in ``dropped``).
        tracer = SpanTracer(max_spans=1_000_000)
        set_default_tracer(tracer)  # every cluster built below picks it up
        try:
            generate_report(scale=args.scale)
        finally:
            set_default_tracer(None)
        write_chrome_trace(tracer, args.trace)
        print(f"trace: {len(tracer.spans)} spans -> {args.trace}",
              file=sys.stderr)
    else:
        generate_report(scale=args.scale)
    return 0


if __name__ == "__main__":
    sys.exit(main())
