"""Table generators — Tables I and II plus the §V-B3 single-op costs."""

from __future__ import annotations

from typing import Dict, Tuple

from ..core import (
    CounterReport,
    measure_extoll_polling_counters,
    measure_ib_buffer_counters,
    measure_single_op_instructions,
)


def table1_extoll_polling(iterations: int = 100) -> Tuple[CounterReport, CounterReport]:
    """Table I: EXTOLL ping-pong counters, system-memory vs device-memory
    polling (§V-A3)."""
    return measure_extoll_polling_counters(iterations=iterations)


def table2_ib_buffers(iterations: int = 100) -> Tuple[CounterReport, CounterReport]:
    """Table II: InfiniBand ping-pong counters, queue buffers on host vs on
    GPU memory (§V-B3)."""
    return measure_ib_buffer_counters(iterations=iterations)


def single_op_costs() -> Dict[str, int]:
    """§V-B3: instructions for one ibv_post_send / ibv_poll_cq, plus the
    EXTOLL descriptor post for contrast (442 / 283 / 'a few tens')."""
    return measure_single_op_instructions()


# Paper-reported values, for the EXPERIMENTS.md comparison and the
# shape-assertions in the benchmark suite.
PAPER_TABLE1 = {
    "system memory": {
        "sysmem_read_transactions": 4368,
        "sysmem_write_transactions": 2908,
        "global_load_accesses": 0,
        "global_store_accesses": 500,
        "l2_read_hits": 0,
        "l2_read_requests": 4822,
        "l2_write_requests": 5268,
        "memory_accesses": 6788,
        "instructions_executed": 46413,
    },
    "device memory": {
        "sysmem_read_transactions": 0,
        "sysmem_write_transactions": 303,
        "global_load_accesses": 1314,
        "global_store_accesses": 400,
        "l2_read_hits": 3143,
        "l2_read_requests": 2970,
        "l2_write_requests": 404,
        "memory_accesses": 1714,
        "instructions_executed": 22491,
    },
}

PAPER_TABLE2 = {
    "Buffer on Host": {
        "sysmem_read_transactions": 772,
        "sysmem_write_transactions": 670,
        "l2_read_misses": 999,
        "l2_read_hits": 16647,
        "l2_read_requests": 16657,
        "l2_write_requests": 1990,
        "memory_accesses": 59937,
        "instructions_executed": 123297,
    },
    "Buffer on GPU": {
        "sysmem_read_transactions": 80,
        "sysmem_write_transactions": 316,
        "l2_read_misses": 1405,
        "l2_read_hits": 14575,
        "l2_read_requests": 15110,
        "l2_write_requests": 1885,
        "memory_accesses": 58905,
        "instructions_executed": 110463,
    },
}

PAPER_SINGLE_OP = {"ibv_post_send": 442, "ibv_poll_cq": 283}
