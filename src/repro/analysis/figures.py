"""Series generators — one function per figure in the paper's evaluation.

Each function runs the corresponding experiment over the paper's parameter
grid and returns the labeled curves.  ``scale`` trades fidelity for run time
(1.0 = paper-sized grids; smaller values shrink sizes/iterations for CI).
"""

from __future__ import annotations

from typing import List, Optional

from ..cluster import build_extoll_cluster, build_ib_cluster
from ..core import (
    ExtollMode,
    IbMode,
    RateMethod,
    Series,
    run_extoll_bandwidth,
    run_extoll_message_rate,
    run_extoll_pingpong,
    run_ib_bandwidth,
    run_ib_message_rate,
    run_ib_pingpong,
    setup_extoll_connection,
    setup_extoll_connections,
    setup_ib_connection,
    setup_ib_connections,
)
from ..node import NodeConfig
from ..gpu import GpuConfig
from ..units import KIB, MIB

# The paper's x-axes.
LATENCY_SIZES = [4, 16, 64, 256, 1 * KIB, 4 * KIB, 16 * KIB, 64 * KIB, 256 * KIB]
BANDWIDTH_SIZES = [1, 4, 16, 64, 256, 1 * KIB, 4 * KIB, 16 * KIB, 64 * KIB,
                   256 * KIB, 1 * MIB, 4 * MIB]
FIG3_SIZES = [4, 16, 64, 256, 1 * KIB, 4 * KIB, 16 * KIB, 64 * KIB, 256 * KIB,
              1 * MIB, 4 * MIB, 16 * MIB, 64 * MIB]
CONNECTION_COUNTS = [1, 2, 4, 8, 16, 24, 32]


def _sizes(sizes: List[int], scale: float) -> List[int]:
    if scale >= 1.0:
        return sizes
    keep = max(3, int(len(sizes) * scale))
    step = max(1, len(sizes) // keep)
    picked = sizes[::step]
    return picked if picked[-1] == sizes[-1] else picked + [sizes[-1]]


def _iters(base: int, size: int, scale: float) -> int:
    # Fewer iterations for huge messages: the transfer time dominates anyway.
    cap = max(2, int((4 * MIB) / max(size, 1)))
    return max(2, min(int(base * scale) or base, cap, base))


def _big_gpu_node() -> NodeConfig:
    """Fig. 3 goes to 64 MiB payloads: two 160 MiB buffers per GPU."""
    return NodeConfig(gpu=GpuConfig(dram_bytes=384 * MIB))


# --- Fig. 1a: EXTOLL latency ---------------------------------------------------

def fig1a_extoll_latency(scale: float = 1.0, iterations: int = 20,
                         sizes: Optional[List[int]] = None) -> List[Series]:
    sizes = sizes or _sizes(LATENCY_SIZES, scale)
    out = []
    for mode in (ExtollMode.DIRECT, ExtollMode.POLL_ON_GPU,
                 ExtollMode.ASSISTED, ExtollMode.HOST_CONTROLLED):
        series = Series(mode.value)
        for size in sizes:
            cluster = build_extoll_cluster()
            conn = setup_extoll_connection(cluster, max(size, 4 * KIB))
            series.points.append(run_extoll_pingpong(
                cluster, conn, mode, size,
                iterations=_iters(iterations, size, scale), warmup=2))
        out.append(series)
    return out


# --- Fig. 1b: EXTOLL bandwidth --------------------------------------------------

def fig1b_extoll_bandwidth(scale: float = 1.0,
                           sizes: Optional[List[int]] = None) -> List[Series]:
    sizes = sizes or _sizes(BANDWIDTH_SIZES, scale)
    out = []
    for mode in (ExtollMode.DIRECT, ExtollMode.ASSISTED,
                 ExtollMode.HOST_CONTROLLED):
        series = Series(mode.value)
        for size in sizes:
            cluster = build_extoll_cluster()
            conn = setup_extoll_connection(cluster, max(size, 4 * KIB))
            count = max(6, min(32, int((6 * MIB) * max(scale, 0.3)) // max(size, 1)))
            series.points.append(run_extoll_bandwidth(cluster, conn, mode,
                                                      size, count=count))
        out.append(series)
    return out


# --- Fig. 2: EXTOLL message rate ---------------------------------------------------

def fig2_extoll_message_rate(scale: float = 1.0,
                             connection_counts: Optional[List[int]] = None,
                             per_connection: int = 100) -> List[Series]:
    counts = connection_counts or CONNECTION_COUNTS
    per_connection = max(20, int(per_connection * scale))
    out = []
    for method in (RateMethod.BLOCKS, RateMethod.KERNELS, RateMethod.ASSISTED,
                   RateMethod.HOST_CONTROLLED):
        series = Series(method.value)
        for n in counts:
            cluster = build_extoll_cluster()
            conns = setup_extoll_connections(cluster, 4 * KIB, n)
            series.points.append(run_extoll_message_rate(
                cluster, conns, method, per_connection=per_connection))
        out.append(series)
    return out


# --- Fig. 3: put time vs polling time ------------------------------------------------

def fig3_polling_ratio(scale: float = 1.0, iterations: int = 10,
                       sizes: Optional[List[int]] = None) -> List[Series]:
    """Polling-time / WR-generation-time per message size for the two EXTOLL
    polling approaches (§V-A3).  At small sizes system-memory polling costs
    ~10x the posting time; at large sizes the data transfer dominates both."""
    sizes = sizes or _sizes(FIG3_SIZES, scale)
    node_config = _big_gpu_node()
    out = []
    for mode, label in ((ExtollMode.DIRECT, "system memory"),
                        (ExtollMode.POLL_ON_GPU, "device memory")):
        series = Series(label)
        for size in sizes:
            cluster = build_extoll_cluster(node_config)
            conn = setup_extoll_connection(cluster, max(size, 4 * KIB))
            series.points.append(run_extoll_pingpong(
                cluster, conn, mode, size,
                iterations=_iters(iterations, size, scale), warmup=1))
        out.append(series)
    return out


# --- Fig. 4a: InfiniBand latency ----------------------------------------------------

_IB_MODE_LOCATION = {
    IbMode.BUF_ON_GPU: "gpu",
    IbMode.BUF_ON_HOST: "host",
    IbMode.ASSISTED: "host",
    IbMode.HOST_CONTROLLED: "host",
}


def fig4a_ib_latency(scale: float = 1.0, iterations: int = 20,
                     sizes: Optional[List[int]] = None) -> List[Series]:
    sizes = sizes or _sizes(LATENCY_SIZES, scale)
    out = []
    for mode in (IbMode.BUF_ON_GPU, IbMode.BUF_ON_HOST, IbMode.ASSISTED,
                 IbMode.HOST_CONTROLLED):
        series = Series(mode.value)
        for size in sizes:
            cluster = build_ib_cluster()
            conn = setup_ib_connection(cluster, max(size, 4 * KIB),
                                       buffer_location=_IB_MODE_LOCATION[mode])
            series.points.append(run_ib_pingpong(
                cluster, conn, mode, size,
                iterations=_iters(iterations, size, scale), warmup=2))
        out.append(series)
    return out


# --- Fig. 4b: InfiniBand bandwidth ---------------------------------------------------

def fig4b_ib_bandwidth(scale: float = 1.0,
                       sizes: Optional[List[int]] = None) -> List[Series]:
    sizes = sizes or _sizes(BANDWIDTH_SIZES, scale)
    out = []
    for mode in (IbMode.BUF_ON_GPU, IbMode.BUF_ON_HOST, IbMode.ASSISTED,
                 IbMode.HOST_CONTROLLED):
        series = Series(mode.value)
        for size in sizes:
            cluster = build_ib_cluster()
            conn = setup_ib_connection(cluster, max(size, 4 * KIB),
                                       buffer_location=_IB_MODE_LOCATION[mode])
            count = max(6, min(32, int((6 * MIB) * max(scale, 0.3)) // max(size, 1)))
            series.points.append(run_ib_bandwidth(cluster, conn, mode, size,
                                                  count=count))
        out.append(series)
    return out


# --- Fig. 5: InfiniBand message rate ---------------------------------------------------

def fig5_ib_message_rate(scale: float = 1.0,
                         connection_counts: Optional[List[int]] = None,
                         per_connection: int = 100) -> List[Series]:
    counts = connection_counts or CONNECTION_COUNTS
    per_connection = max(20, int(per_connection * scale))
    out = []
    for method in (RateMethod.BLOCKS, RateMethod.KERNELS, RateMethod.ASSISTED,
                   RateMethod.HOST_CONTROLLED):
        location = "gpu" if method in (RateMethod.BLOCKS, RateMethod.KERNELS) \
            else "host"
        series = Series(method.value)
        for n in counts:
            cluster = build_ib_cluster()
            conns = setup_ib_connections(cluster, 4 * KIB, n,
                                         buffer_location=location)
            series.points.append(run_ib_message_rate(
                cluster, conns, method, per_connection=per_connection))
        out.append(series)
    return out
