"""Scaling analysis of the N-node collectives (§VIII future-work direction).

Two invariants tie the N-node collectives back to the paper's measured
2-node primitives:

* **step scaling** — every all-reduce schedule must complete in exactly
  its closed-form step count per rank: ``2*(N-1)`` for the ring,
  ``2*log2 N`` for recursive halving/doubling, ``log2 N`` sends for the
  binomial tree (formulas shared with :mod:`repro.fabrics.collective`,
  the canonical home of the schedule math).  The counts are *measured*
  (each rank counts its sends), not assumed.
* **per-step cost** — one all-reduce step is a msglib message: post a
  put, then detect arrival by polling device memory.  Its cost must stay
  within a small factor of the 2-node ``dev2dev-pollOnGPU`` ping-pong
  one-way latency at the same size — the collectives add pipelining and
  per-message msglib bookkeeping but no new mechanism, so a large
  deviation would mean the N-node path costs something the 2-node
  analysis never measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..cluster import build_extoll_cluster
from ..collectives import CollectiveMode, build_communicator, run_collective
from ..collectives.bench import op_connectivity, op_max_payload
from ..core import ExtollMode, run_extoll_pingpong, setup_extoll_connection
from ..fabrics.collective import expected_phases, expected_steps

#: analysis op name -> the schedule key ``expected_steps`` understands.
_OP_ALGORITHM = {"all-reduce": "ring", "all-reduce-rh": "rh",
                 "all-reduce-tree": "tree"}


def step_message_bytes(algorithm: str, nodes: int, size: int) -> int:
    """Mean payload bytes one phase moves — the size the 2-node baseline
    ping-pong must run at for the per-step ratio to compare like with
    like.  The ring moves one ``size``-byte chunk per step; the tree
    moves the whole ``nodes * size`` vector every phase; halving/doubling
    averages its shrinking-then-growing windows."""
    if algorithm == "ring":
        return size
    vector_bytes = nodes * size
    if algorithm == "tree":
        return vector_bytes
    # rh: per-rank total is 2*V*(N-1)/N bytes over 2*log2 N phases.
    phases = expected_phases("rh", nodes)
    mean = 2 * vector_bytes * (nodes - 1) // nodes // phases
    return max(8, (mean + 7) // 8 * 8)

#: Node counts the scaling run sweeps.
SCALING_NODES = (2, 4, 8)

#: Per-message payload bytes used for the comparison.
SCALING_SIZE = 64

#: Accepted band for (all-reduce per-step latency) / (2-node ping-pong
#: one-way latency).  A step is put + device-memory poll exactly like a
#: ping-pong half round trip, but rides the msglib slot protocol (staging
#: stores, header, credit bookkeeping) and overlaps along the ring, so the
#: ratio sits above 1 without being allowed to run away.
STEP_RATIO_BAND = (0.5, 3.0)

#: Per-schedule bands.  The ring moves a fixed ``size``-byte chunk per
#: step, so msglib's per-word staging stores are a small constant on top
#: of the wire put.  The xor schedules move up-to-whole-vector payloads
#: per phase: ``gpu_stage_send`` stores one device word per 8 payload
#: bytes and puts the whole slot, a per-byte cost several times the raw
#: put's wire slope — so their ratio to the (wire-slope-only) ping-pong
#: baseline legitimately grows with N and needs the wider ceiling.
STEP_RATIO_BANDS = {
    "ring": STEP_RATIO_BAND,
    "rh": (0.5, 4.0),
    "tree": (0.5, 6.0),
}


@dataclass(frozen=True)
class ScalingPoint:
    """One all-reduce schedule at one node count vs the 2-node baseline."""

    nodes: int
    size: int
    steps: int                # measured sends per rank
    expected_steps: int       # the schedule's closed form (see fabrics)
    latency: float            # one full all-reduce (seconds)
    step_latency: float       # latency / synchronous phase count
    baseline_one_way: float   # 2-node ping-pong one-way latency at the
                              # schedule's per-phase message size (seconds)
    correct: bool             # numerics checked against exact sums
    algorithm: str = "ring"

    @property
    def step_ratio(self) -> float:
        return self.step_latency / self.baseline_one_way

    @property
    def steps_ok(self) -> bool:
        return self.steps == self.expected_steps

    @property
    def ratio_ok(self) -> bool:
        lo, hi = STEP_RATIO_BANDS.get(self.algorithm, STEP_RATIO_BAND)
        return lo <= self.step_ratio <= hi

    @property
    def ok(self) -> bool:
        return self.correct and self.steps_ok and self.ratio_ok


def pingpong_baseline(size: int = SCALING_SIZE, iterations: int = 8,
                      warmup: int = 2) -> float:
    """The 2-node ``dev2dev-pollOnGPU`` one-way latency at ``size``."""
    cluster = build_extoll_cluster()
    conn = setup_extoll_connection(cluster, buf_bytes=max(4096, size))
    point = run_extoll_pingpong(cluster, conn, ExtollMode.POLL_ON_GPU, size,
                                iterations=iterations, warmup=warmup)
    return point.latency


def allreduce_scaling(node_counts: Sequence[int] = SCALING_NODES,
                      size: int = SCALING_SIZE,
                      mode: CollectiveMode = CollectiveMode.POLL_ON_GPU,
                      topology: str = "auto", iterations: int = 6,
                      warmup: int = 2,
                      algorithm: str = "ring") -> Tuple[ScalingPoint, ...]:
    """Measure one all-reduce schedule at every node count and pin each
    point to the 2-node ping-pong baseline.  ``algorithm`` selects the
    schedule (``ring``/``rh``/``tree``) and with it the closed-form step
    expectation imported from :mod:`repro.fabrics.collective` — the
    parameterized version of the old hard-coded ``2*(N-1)``."""
    op = {v: k for k, v in _OP_ALGORITHM.items()}.get(algorithm)
    if op is None:
        raise ValueError(f"unknown all-reduce algorithm {algorithm!r} "
                         f"(choose from: "
                         f"{', '.join(sorted(_OP_ALGORITHM.values()))})")
    baselines: Dict[int, float] = {}
    points = []
    for nodes in node_counts:
        # Baseline at the schedule's per-phase message size, cached by
        # size (the ring's is N-independent, so its sweep measures once).
        bas_size = step_message_bytes(algorithm, nodes, size)
        if bas_size not in baselines:
            baselines[bas_size] = pingpong_baseline(
                bas_size, iterations=iterations, warmup=warmup)
        # The xor-partner schedules exchange with distant ranks; on the
        # default physical ring they would pay multi-hop relay latency
        # the 2-node baseline never sees, so "auto" gives them the
        # all-pairs fabric their channel layout assumes.
        physical = topology
        if topology == "auto" and op_connectivity(op) == "full":
            physical = "full" if nodes > 2 else "auto"
        cluster, comm = build_communicator(
            nodes, size, mode, physical,
            connectivity=op_connectivity(op),
            max_payload=op_max_payload(op, nodes, size))
        result = run_collective(cluster, comm, op, size,
                                iterations=iterations, warmup=warmup)
        phases = expected_phases(algorithm, nodes)
        points.append(ScalingPoint(
            nodes=nodes, size=size, steps=result.steps,
            expected_steps=expected_steps(algorithm, nodes),
            latency=result.point.latency,
            step_latency=result.point.latency / phases,
            baseline_one_way=baselines[bas_size], correct=result.correct,
            algorithm=algorithm))
    return tuple(points)


def scaling_report(points: Sequence[ScalingPoint]) -> Dict[str, object]:
    """Aggregate verdict used by tests and the report."""
    return {
        "points": list(points),
        "steps_ok": all(p.steps_ok for p in points),
        "numerics_ok": all(p.correct for p in points),
        "ratio_ok": all(p.ratio_ok for p in points),
        "ok": all(p.ok for p in points),
    }


def render_scaling(points: Sequence[ScalingPoint]) -> str:
    title = (f"{points[0].algorithm} all-reduce scaling "
             f"({points[0].size}B/step) vs 2-node ping-pong"
             if points else "All-reduce scaling")
    lines = [title, "=" * len(title)]
    lines.append("N".rjust(3) + "steps".rjust(8) + "expected".rjust(10)
                 + "latency".rjust(12) + "per-step".rjust(12)
                 + "ratio".rjust(8) + "  verdict")
    for p in points:
        lines.append(
            f"{p.nodes}".rjust(3) + f"{p.steps}".rjust(8)
            + f"{p.expected_steps}".rjust(10)
            + f"{p.latency * 1e6:10.3f}us" + f"{p.step_latency * 1e6:10.3f}us"
            + f"{p.step_ratio:8.2f}"
            + ("   OK" if p.ok else "   FAIL"))
    return "\n".join(lines)
