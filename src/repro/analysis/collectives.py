"""Scaling analysis of the ring collectives (§VIII future-work direction).

Two invariants tie the N-node collectives back to the paper's measured
2-node primitives:

* **step scaling** — ring all-reduce must complete in exactly ``2*(N-1)``
  point-to-point steps per rank; all-gather in ``N-1``.  The counts are
  *measured* (each rank counts its sends), not assumed.
* **per-step cost** — one all-reduce step is a msglib message of the chunk
  size: post a put, then detect arrival by polling device memory.  Its cost
  must stay within a small factor of the 2-node ``dev2dev-pollOnGPU``
  ping-pong one-way latency at the same size — the collectives add ring
  pipelining and per-message msglib bookkeeping but no new mechanism, so a
  large deviation would mean the N-node path costs something the 2-node
  analysis never measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..cluster import build_extoll_cluster
from ..collectives import CollectiveMode, build_communicator, run_collective
from ..core import ExtollMode, run_extoll_pingpong, setup_extoll_connection

#: Node counts the scaling run sweeps.
SCALING_NODES = (2, 4, 8)

#: Per-message payload bytes used for the comparison.
SCALING_SIZE = 64

#: Accepted band for (all-reduce per-step latency) / (2-node ping-pong
#: one-way latency).  A step is put + device-memory poll exactly like a
#: ping-pong half round trip, but rides the msglib slot protocol (staging
#: stores, header, credit bookkeeping) and overlaps along the ring, so the
#: ratio sits above 1 without being allowed to run away.
STEP_RATIO_BAND = (0.5, 3.0)


@dataclass(frozen=True)
class ScalingPoint:
    """Ring all-reduce at one node count vs the 2-node baseline."""

    nodes: int
    size: int
    steps: int                # measured sends per rank
    expected_steps: int       # 2*(N-1)
    latency: float            # one full all-reduce (seconds)
    step_latency: float       # latency / steps
    baseline_one_way: float   # 2-node ping-pong one-way latency (seconds)
    correct: bool             # numerics checked against exact sums

    @property
    def step_ratio(self) -> float:
        return self.step_latency / self.baseline_one_way

    @property
    def steps_ok(self) -> bool:
        return self.steps == self.expected_steps

    @property
    def ratio_ok(self) -> bool:
        lo, hi = STEP_RATIO_BAND
        return lo <= self.step_ratio <= hi

    @property
    def ok(self) -> bool:
        return self.correct and self.steps_ok and self.ratio_ok


def pingpong_baseline(size: int = SCALING_SIZE, iterations: int = 8,
                      warmup: int = 2) -> float:
    """The 2-node ``dev2dev-pollOnGPU`` one-way latency at ``size``."""
    cluster = build_extoll_cluster()
    conn = setup_extoll_connection(cluster, buf_bytes=max(4096, size))
    point = run_extoll_pingpong(cluster, conn, ExtollMode.POLL_ON_GPU, size,
                                iterations=iterations, warmup=warmup)
    return point.latency


def allreduce_scaling(node_counts: Sequence[int] = SCALING_NODES,
                      size: int = SCALING_SIZE,
                      mode: CollectiveMode = CollectiveMode.POLL_ON_GPU,
                      topology: str = "auto", iterations: int = 6,
                      warmup: int = 2) -> Tuple[ScalingPoint, ...]:
    """Measure ring all-reduce at every node count and pin each point to
    the 2-node ping-pong baseline."""
    baseline = pingpong_baseline(size, iterations=iterations, warmup=warmup)
    points = []
    for nodes in node_counts:
        cluster, comm = build_communicator(nodes, size, mode, topology)
        result = run_collective(cluster, comm, "all-reduce", size,
                                iterations=iterations, warmup=warmup)
        points.append(ScalingPoint(
            nodes=nodes, size=size, steps=result.steps,
            expected_steps=2 * (nodes - 1),
            latency=result.point.latency,
            step_latency=result.point.latency / result.steps,
            baseline_one_way=baseline, correct=result.correct))
    return tuple(points)


def scaling_report(points: Sequence[ScalingPoint]) -> Dict[str, object]:
    """Aggregate verdict used by tests and the report."""
    return {
        "points": list(points),
        "steps_ok": all(p.steps_ok for p in points),
        "numerics_ok": all(p.correct for p in points),
        "ratio_ok": all(p.ratio_ok for p in points),
        "ok": all(p.ok for p in points),
    }


def render_scaling(points: Sequence[ScalingPoint]) -> str:
    title = (f"Ring all-reduce scaling ({points[0].size}B/step) vs 2-node "
             f"ping-pong" if points else "Ring all-reduce scaling")
    lines = [title, "=" * len(title)]
    lines.append("N".rjust(3) + "steps".rjust(8) + "expected".rjust(10)
                 + "latency".rjust(12) + "per-step".rjust(12)
                 + "ratio".rjust(8) + "  verdict")
    for p in points:
        lines.append(
            f"{p.nodes}".rjust(3) + f"{p.steps}".rjust(8)
            + f"{p.expected_steps}".rjust(10)
            + f"{p.latency * 1e6:10.3f}us" + f"{p.step_latency * 1e6:10.3f}us"
            + f"{p.step_ratio:8.2f}"
            + ("   OK" if p.ok else "   FAIL"))
    return "\n".join(lines)
