"""``python -m repro triggered`` — stage a ring exchange once, fire it with
one doorbell per node, and compare its control path against host assist.

The demo is a two-round neighbour relay on an N-node ring: round 1 puts each
node's token to its right neighbour; round 2 relays the token just received
from the left one hop further.  Both rounds are staged up front as chains —
round 2 armed on (own round 1 complete) + (left neighbour's data arrived) —
so the only control-path action after staging is ONE 8-byte counter doorbell
per node.  The host-assist reference runs the identical exchange with the
CPU posting every descriptor and polling completer notifications.

Verdicts (exit status is non-zero if any fails):

* both variants move the right bytes,
* the triggered run posts ZERO work requests through the BAR after staging,
* exactly one counter doorbell per node,
* every staged chain completes.
"""

from __future__ import annotations

import argparse
import json
from typing import Dict, List, Optional, Tuple

from ..cluster import build_extoll_cluster
from ..extoll import NotificationCursor, NotifyFlags, RmaOp, RmaWorkRequest, \
    rma_post, rma_wait_notification
from ..memory import AddressRange
from ..obs.export import write_chrome_trace
from ..obs.tracer import SpanTracer
from ..sim import Simulator
from ..units import US
from .unit import TriggeredUnit

_LIMIT = 1.0  # simulated-seconds cap per run


def _build(num_nodes: int, seed: int, tracer: Optional[SpanTracer]):
    sim = Simulator(seed=seed, tracer=tracer)
    cluster = build_extoll_cluster(sim=sim, num_nodes=num_nodes,
                                   topology="ring" if num_nodes > 2 else "pair")
    for node in cluster.nodes:
        node.nic.open_port(0)
    return cluster


def _buffers(cluster, size: int):
    """Token/recv1/recv2 per node, registered; returns NLA tables."""
    tokens, recv1, recv2 = [], [], []
    for i, node in enumerate(cluster.nodes):
        tok = node.host_malloc(size)
        node.host_mem.write(tok.base, bytes([i + 1]) * size)
        tokens.append((tok, node.nic.register_memory(tok)))
        r1 = node.host_malloc(size)
        recv1.append((r1, node.nic.register_memory(r1)))
        r2 = node.host_malloc(size)
        recv2.append((r2, node.nic.register_memory(r2)))
    return tokens, recv1, recv2


def _expected(i: int, n: int, size: int, rounds: int) -> bytes:
    return bytes([(i - rounds) % n + 1]) * size


def run_triggered(num_nodes: int, size: int, seed: int,
                  tracer: Optional[SpanTracer] = None) -> Dict[str, object]:
    cluster = _build(num_nodes, seed, tracer)
    n = num_nodes
    tokens, recv1, recv2 = _buffers(cluster, size)
    units = [TriggeredUnit(node) for node in cluster.nodes]

    chains = []
    for i, (node, unit) in enumerate(zip(cluster.nodes, units)):
        right = (i + 1) % n
        start = unit.counter("start")
        ready2 = unit.counter("round2-ready")
        # Left neighbour's round-1 data landing in recv1 ticks ready2 ...
        unit.count_arrivals(ready2, nla_base=recv1[i][1].base, nla_size=size)
        # ... and so does our own round-1 chain completing.
        c1 = unit.chain(f"n{i}.round1").append(RmaWorkRequest(
            op=RmaOp.PUT, port=0, dst_node=right,
            src_nla=tokens[i][1].base, dst_nla=recv1[right][1].base,
            size=size, flags=NotifyFlags.NONE)).on_complete_tick(ready2)
        c2 = unit.chain(f"n{i}.round2").append(RmaWorkRequest(
            op=RmaOp.PUT, port=0, dst_node=right,
            src_nla=recv1[i][1].base, dst_nla=recv2[right][1].base,
            size=size, flags=NotifyFlags.NONE))
        c1.arm(start, 1)
        c2.arm(ready2, 2)
        chains += [c1, c2]

    # The entire exchange is now staged; each node's GPU fires it with one
    # 8-byte doorbell store.
    handles = []
    for i, (node, unit) in enumerate(zip(cluster.nodes, units)):
        port = node.nic.port_state(0)
        node.gpu.map_mmio(AddressRange(
            port.page_addr, node.nic.config.requester_page_size))
        start = unit.counters[0]

        def kernel(ctx, unit=unit, page=port.page_addr, counter=start):
            yield from unit.device_tick(ctx, page, counter)
            yield from ctx.fence_system()

        handles.append(node.gpu.launch(kernel))

    cluster.sim.run_until_complete(*handles, limit=_LIMIT)
    cluster.sim.run_until_complete(*[c.completed for c in chains],
                                   limit=_LIMIT)
    elapsed = cluster.sim.now
    cluster.sim.run(until=cluster.sim.now + 200 * US)  # drain deliveries

    data_ok = all(
        cluster.nodes[i].host_mem.read(recv1[i][0].base, size)
        == _expected(i, n, size, 1)
        and cluster.nodes[i].host_mem.read(recv2[i][0].base, size)
        == _expected(i, n, size, 2)
        for i in range(n))
    return {
        "elapsed_us": elapsed / US,
        "data_ok": data_ok,
        "doorbells": sum(node.nic.trigger_doorbells
                         for node in cluster.nodes),
        "host_wr_posts": sum(node.nic.wr_posts + node.nic.batch_descriptors
                             for node in cluster.nodes),
        "chains_completed": sum(u.stats.chains_completed for u in units),
        "chains_staged": sum(u.stats.chains_staged for u in units),
        "descriptors_fired": sum(u.stats.descriptors_fired for u in units),
        "counter_ticks": sum(u.stats.counter_ticks for u in units),
    }


def run_host_assist(num_nodes: int, size: int, seed: int,
                    tracer: Optional[SpanTracer] = None) -> Dict[str, object]:
    cluster = _build(num_nodes, seed, tracer)
    n = num_nodes
    tokens, recv1, recv2 = _buffers(cluster, size)

    procs = []
    for i, node in enumerate(cluster.nodes):
        right = (i + 1) % n
        port = node.nic.port_state(0)

        def body(ctx, i=i, right=right, port=port):
            cursor = NotificationCursor(port.completer_queue)
            w1 = RmaWorkRequest(op=RmaOp.PUT, port=0, dst_node=right,
                                src_nla=tokens[i][1].base,
                                dst_nla=recv1[right][1].base,
                                size=size, flags=NotifyFlags.COMPLETER)
            yield from rma_post(ctx, port.page_addr, w1)
            yield from rma_wait_notification(ctx, cursor)  # left's round 1
            w2 = RmaWorkRequest(op=RmaOp.PUT, port=0, dst_node=right,
                                src_nla=recv1[i][1].base,
                                dst_nla=recv2[right][1].base,
                                size=size, flags=NotifyFlags.COMPLETER)
            yield from rma_post(ctx, port.page_addr, w2)
            yield from rma_wait_notification(ctx, cursor)  # left's round 2

        procs.append(node.cpu.spawn(body, name=f"host-assist-{i}"))

    cluster.sim.run_until_complete(*procs, limit=_LIMIT)
    elapsed = cluster.sim.now
    cluster.sim.run(until=cluster.sim.now + 200 * US)

    data_ok = all(
        cluster.nodes[i].host_mem.read(recv1[i][0].base, size)
        == _expected(i, n, size, 1)
        and cluster.nodes[i].host_mem.read(recv2[i][0].base, size)
        == _expected(i, n, size, 2)
        for i in range(n))
    return {
        "elapsed_us": elapsed / US,
        "data_ok": data_ok,
        "doorbells": sum(node.nic.trigger_doorbells
                         for node in cluster.nodes),
        "wr_posts": sum(node.nic.wr_posts + node.nic.batch_descriptors
                        for node in cluster.nodes),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro triggered",
        description="Staged ring exchange fired by counter doorbells, "
                    "vs host-assisted control.")
    parser.add_argument("--nodes", type=int, default=4,
                        help="ring size (default: 4)")
    parser.add_argument("--size", type=int, default=4096,
                        help="bytes per put (default: 4096)")
    parser.add_argument("--quick", action="store_true",
                        help="small run for CI (2 nodes, 256B)")
    parser.add_argument("--seed", type=int, default=7,
                        help="simulator seed (default: 7)")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of text")
    parser.add_argument("--out", default=None,
                        help="write the triggered run as a Chrome trace")
    args = parser.parse_args(argv)

    nodes = 2 if args.quick else args.nodes
    size = 256 if args.quick else args.size

    trig_tracer = SpanTracer() if args.out else None
    trig = run_triggered(nodes, size, args.seed, tracer=trig_tracer)
    host = run_host_assist(nodes, size, args.seed)
    if args.out:
        write_chrome_trace(trig_tracer, args.out)

    verdicts: List[Tuple[str, bool, str]] = [
        ("triggered-data", bool(trig["data_ok"]),
         "both relay rounds delivered the right bytes"),
        ("host-assist-data", bool(host["data_ok"]),
         "reference exchange delivered the right bytes"),
        ("zero-host-wr-posts", trig["host_wr_posts"] == 0,
         f"WR posts through the BAR after staging: {trig['host_wr_posts']}"),
        ("one-doorbell-per-node", trig["doorbells"] == nodes,
         f"counter doorbells: {trig['doorbells']} (nodes: {nodes})"),
        ("all-chains-completed",
         trig["chains_completed"] == trig["chains_staged"] == 2 * nodes,
         f"{trig['chains_completed']}/{trig['chains_staged']} chains "
         f"completed"),
    ]
    ok = all(v for _, v, _ in verdicts)

    if args.json:
        print(json.dumps({
            "nodes": nodes, "size": size, "seed": args.seed,
            "triggered": trig, "host_assist": host,
            "verdicts": {name: v for name, v, _ in verdicts},
            "ok": ok,
        }, indent=2))
        return 0 if ok else 1

    print(f"Triggered ring exchange: {nodes} nodes, {size} B per put, "
          f"2 rounds")
    print("=" * 60)
    rows = [
        ("control path", "triggered chains", "host assist"),
        ("WR posts via BAR", str(trig["host_wr_posts"]),
         str(host["wr_posts"])),
        ("counter doorbells", str(trig["doorbells"]),
         str(host["doorbells"])),
        ("completion time", f"{trig['elapsed_us']:.2f} us",
         f"{host['elapsed_us']:.2f} us"),
    ]
    for label, t, h in rows:
        print(f"{label:>20} {t:>18} {h:>14}")
    print()
    for name, verdict, detail in verdicts:
        print(f"[{'PASS' if verdict else 'FAIL'}] {name}: {detail}")
    return 0 if ok else 1
