"""Pre-staged descriptor chains.

A :class:`DescriptorChain` is a list of RMA work requests staged *once*
(off the critical path) and fired later by a threshold counter — the NIC
executes the whole chain with zero host/GPU descriptor posts, exactly the
deferred-execution model of arXiv:2406.05594.  Chains tick counters when
they complete, so a whole communication round (e.g. a halo exchange) can be
staged as a DAG and set off by one kernel tick.

Lifecycle::

    STAGED --arm()--> ARMED --counter>=threshold--> FIRED --all WRs
      |                 |                            started--> COMPLETED
      +----cancel()-----+--> CANCELLED

The firing mechanics live in :class:`~repro.triggered.unit.TriggeredUnit`;
this module only holds the chain state and the hook-carrying WR subclass.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable, List, Optional, Tuple

from ..errors import TriggeredError
from ..extoll import RmaWorkRequest
from ..sim import Event


@dataclasses.dataclass(frozen=True)
class TriggeredWorkRequest(RmaWorkRequest):
    """A work request carrying a local-completion hook.

    ``on_started`` has no wire representation: chains are posted through
    :meth:`~repro.extoll.rma.RmaUnit.post_many` (the NIC-internal path) and
    never round-trip through ``encode()/decode()``, so the hook survives to
    the requester pipeline, which invokes it once the transfer has been
    handed to the wire.
    """

    on_started: Optional[Callable[[], None]] = dataclasses.field(
        default=None, compare=False, repr=False)


class ChainState(enum.Enum):
    STAGED = "staged"
    ARMED = "armed"
    FIRED = "fired"
    COMPLETED = "completed"
    CANCELLED = "cancelled"


class DescriptorChain:
    """An ordered list of pre-staged WRs fired as one unit."""

    def __init__(self, unit, name: str = "") -> None:
        self.unit = unit
        self.name = name or f"chain{id(self) & 0xFFFF:04x}"
        self.wrs: List[RmaWorkRequest] = []
        self.state = ChainState.STAGED
        #: Succeeds when every descriptor has been started by the NIC.
        self.completed: Event = unit.sim.event(name=f"trig:{self.name}")
        #: Counters ticked (with amounts) on completion — the DAG edges.
        self.completion_ticks: List[Tuple[object, int]] = []
        self._watch = None          # CounterWatch while ARMED
        self._remaining = 0         # WRs not yet started, while FIRED

    # -- staging -------------------------------------------------------------------
    def _require_stageable(self) -> None:
        if self.state not in (ChainState.STAGED, ChainState.ARMED):
            raise TriggeredError(
                f"{self.name}: cannot modify a {self.state.value} chain")

    def append(self, wr: RmaWorkRequest) -> "DescriptorChain":
        self._require_stageable()
        self.wrs.append(wr)
        self.unit.stats.descriptors_staged += 1
        return self

    def extend(self, wrs) -> "DescriptorChain":
        for wr in wrs:
            self.append(wr)
        return self

    def replace_wr(self, index: int, **fields) -> None:
        """Patch a staged descriptor in place (e.g. fill in the destination
        NLA a rendezvous CTS carried).  Only before the chain fires."""
        self._require_stageable()
        self.wrs[index] = dataclasses.replace(self.wrs[index], **fields)

    def on_complete_tick(self, counter, amount: int = 1) -> "DescriptorChain":
        """Tick ``counter`` when this chain completes — how chain-to-chain
        dependencies are expressed."""
        self._require_stageable()
        self.completion_ticks.append((counter, amount))
        return self

    # -- arming / firing -----------------------------------------------------------
    def arm(self, counter, threshold: int) -> "DescriptorChain":
        self.unit.arm(self, counter, threshold)
        return self

    def fire(self) -> "DescriptorChain":
        """Fire immediately (the stream-enqueue / explicit-go path)."""
        self.unit.fire_now(self)
        return self

    def cancel(self) -> None:
        self.unit.cancel(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<DescriptorChain {self.name} {self.state.value} "
                f"wrs={len(self.wrs)}>")
