"""Threshold counters — the arming primitive of triggered operations.

A :class:`TriggerCounter` is a first-class sim object owned by a
:class:`~repro.triggered.unit.TriggeredUnit`.  It only ever counts *up*:
model code ticks it from completion hooks (puts-with-counting, CQE
listeners), kernels tick it with one 8-byte counter-doorbell store, and
chains tick it when they complete (chain-to-chain dependencies).

Watches fire the moment ``value >= threshold`` becomes true — including at
registration time if the counter is already past the threshold, which is
what makes ``arm()``-then-``tick()`` and ``tick()``-then-``arm()`` order-
independent.  Watches at the same tick fire in registration order, so two
runs of the same model replay identically.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..errors import TriggeredError


class CounterWatch:
    """One armed threshold on a counter; cancellable before it fires."""

    __slots__ = ("counter", "threshold", "callback", "fired")

    def __init__(self, counter: "TriggerCounter", threshold: int,
                 callback: Callable[[], None]) -> None:
        self.counter = counter
        self.threshold = threshold
        self.callback: Optional[Callable[[], None]] = callback
        self.fired = False

    @property
    def active(self) -> bool:
        return self.callback is not None and not self.fired

    def cancel(self) -> bool:
        """Retire the watch; returns False if it already fired or was
        already cancelled.  Releases the callback closure immediately."""
        if not self.active:
            return False
        self.callback = None
        return True

    def _fire(self) -> None:
        cb, self.callback = self.callback, None
        if cb is not None:
            self.fired = True
            cb()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("fired" if self.fired
                 else "cancelled" if self.callback is None else "armed")
        return (f"<CounterWatch {self.counter.name}>="
                f"{self.threshold} {state}>")


class TriggerCounter:
    """A monotonically increasing completion counter with threshold watches."""

    def __init__(self, unit, counter_id: int, name: str = "") -> None:
        self.unit = unit
        self.id = counter_id
        self.name = name or f"counter{counter_id}"
        self.value = 0
        self.ticks = 0
        self._watches: List[CounterWatch] = []

    def add(self, amount: int = 1) -> None:
        """Tick the counter and fire every watch whose threshold the new
        value reaches, in registration order."""
        if amount <= 0:
            raise TriggeredError(
                f"{self.name}: counters only count up (amount={amount})")
        self.value += amount
        self.ticks += 1
        self.unit.stats.counter_ticks += 1
        self._sweep()

    def watch(self, threshold: int, callback: Callable[[], None],
              ) -> CounterWatch:
        """Fire ``callback`` once when ``value >= threshold``; immediately
        if that already holds.  Returns the cancellable watch."""
        if threshold < 0:
            raise TriggeredError(
                f"{self.name}: negative threshold {threshold}")
        w = CounterWatch(self, threshold, callback)
        if self.value >= threshold:
            w._fire()
        else:
            self._watches.append(w)
        return w

    def _sweep(self) -> None:
        # A firing callback may arm new watches (chain DAGs) or tick other
        # counters; sweep a snapshot and keep whatever is still pending.
        if not self._watches:
            return
        ready = [w for w in self._watches
                 if w.active and self.value >= w.threshold]
        if not ready:
            self._watches = [w for w in self._watches if w.active]
            return
        self._watches = [w for w in self._watches
                         if w.active and self.value < w.threshold]
        for w in ready:
            w._fire()

    @property
    def armed_watches(self) -> int:
        return sum(1 for w in self._watches if w.active)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TriggerCounter {self.name} value={self.value} "
                f"watches={self.armed_watches}>")
