"""repro.triggered — triggered operations: threshold counters, pre-staged
descriptor chains, and stream-ordered communication over the EXTOLL engine.

The deferred-execution model of arXiv:2406.05594 grafted onto the put/get
study: communication is *staged* off the critical path, *armed* against a
threshold counter, and *fired* by completions or a single 8-byte kernel
tick — no host proxy and no per-message descriptor writes.
"""

from .chain import ChainState, DescriptorChain, TriggeredWorkRequest
from .counter import CounterWatch, TriggerCounter
from .stream_ops import CommHandle, comm_enqueue
from .unit import TriggeredStats, TriggeredUnit, triggered_unit

__all__ = [
    "ChainState",
    "CommHandle",
    "CounterWatch",
    "DescriptorChain",
    "TriggerCounter",
    "TriggeredStats",
    "TriggeredUnit",
    "TriggeredWorkRequest",
    "comm_enqueue",
    "triggered_unit",
]
