"""Stream-ordered communication: ``comm_enqueue(stream, chain)``.

A staged chain can be enqueued on a GPU stream like a kernel launch.  The
chain fires only after every prior launch on that stream has completed, and
later launches on the stream wait until the chain's descriptors have all
been started by the NIC — i.e. the chain occupies one slot of the stream's
FIFO, exactly like the deferred-execution streams of arXiv:2406.05594.

The enqueue itself is a host-side queue operation (no simulated MMIO): the
descriptors were staged on the NIC ahead of time, so when stream order
reaches the chain the unit fires it NIC-internally.
"""

from __future__ import annotations

from ..errors import TriggeredError
from ..sim import Event
from .chain import ChainState, DescriptorChain


class CommHandle(Event):
    """Stream-slot handle for an enqueued chain (quacks like a
    :class:`~repro.gpu.kernel.KernelHandle` as far as streams care)."""

    __slots__ = ("fn_name", "chain")

    def __init__(self, sim, chain: DescriptorChain) -> None:
        super().__init__(sim, name=f"comm:{chain.name}")
        self.fn_name = f"comm:{chain.name}"
        self.chain = chain


def comm_enqueue(stream, chain: DescriptorChain) -> CommHandle:
    """Enqueue ``chain`` on ``stream``; returns the stream-slot handle.

    The chain must be STAGED (armed chains belong to their counter; letting
    stream order also fire them would race the two triggers).
    """
    if chain.state is not ChainState.STAGED:
        raise TriggeredError(
            f"{chain.name}: comm_enqueue needs a staged chain, "
            f"not {chain.state.value}")
    if not chain.wrs:
        raise TriggeredError(f"{chain.name}: comm_enqueue on an empty chain")
    unit = chain.unit
    handle = CommHandle(unit.sim, chain)

    def launcher():
        unit.fire_now(chain, via="stream")
        if not chain.completed.processed:
            yield chain.completed
        handle.succeed()

    stream.chain(handle, launcher())
    return handle
