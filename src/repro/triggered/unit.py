"""The per-NIC triggered-operations unit.

One :class:`TriggeredUnit` per EXTOLL NIC owns that NIC's threshold
counters and staged chains.  It is a *NIC-resident* engine in the same
sense as :class:`~repro.faults.reliability.ChannelReliability`: it runs as
sim callbacks, posts descriptors through the NIC-internal
:meth:`~repro.extoll.rma.RmaUnit.post_many` path (zero MMIO), and hooks
completions via ``put_listeners`` / CQ listeners.  The only way the host or
GPU appears on the critical path is the optional 8-byte counter doorbell
(:meth:`device_tick`) — one posted store.

Cost model: a counter doorbell pays the unit's ``trigger_time`` decode
before the tick lands; a firing chain pays one ``trigger_time`` scheduling
stage before its descriptors enter the requester pipeline (where each still
pays the serial ``requester_time``, exactly like batch-doorbell posts).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..errors import TriggeredError
from ..extoll import ExtollNic, RmaWorkRequest
from ..sim import NULL_SPAN
from .chain import ChainState, DescriptorChain, TriggeredWorkRequest
from .counter import TriggerCounter


class TriggeredStats:
    """Counters in the uniform ``snapshot()/diff()`` shape the telemetry
    sampler polls; ``armed`` is a live gauge (armed-chain depth)."""

    GAUGES = ("armed",)

    def __init__(self, unit: "TriggeredUnit") -> None:
        self._unit = unit
        self.chains_staged = 0
        self.chains_armed = 0
        self.chains_fired = 0
        self.chains_completed = 0
        self.chains_cancelled = 0
        self.descriptors_staged = 0
        self.descriptors_fired = 0
        self.counter_ticks = 0
        self.doorbells = 0
        self.stream_enqueues = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "chains_staged": self.chains_staged,
            "chains_armed": self.chains_armed,
            "chains_fired": self.chains_fired,
            "chains_completed": self.chains_completed,
            "chains_cancelled": self.chains_cancelled,
            "descriptors_staged": self.descriptors_staged,
            "descriptors_fired": self.descriptors_fired,
            "counter_ticks": self.counter_ticks,
            "doorbells": self.doorbells,
            "stream_enqueues": self.stream_enqueues,
            "armed": self._unit.armed_chains,
        }

    def diff(self, earlier: Dict[str, int]) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for name, value in self.snapshot().items():
            if name in self.GAUGES:
                out[name] = value
            else:
                out[name] = value - earlier.get(name, 0)
        return out


class TriggeredUnit:
    """Counters + chains + firing logic for one NIC."""

    def __init__(self, node) -> None:
        nic = node.nic
        if not isinstance(nic, ExtollNic):
            raise TriggeredError(
                "triggered operations need an attached EXTOLL NIC")
        if nic.triggered is not None:
            raise TriggeredError(f"{nic.name} already has a triggered unit")
        self.node = node
        self.nic = nic
        self.sim = nic.sim
        self.config = nic.config
        self.stats = TriggeredStats(self)
        self.counters: Dict[int, TriggerCounter] = {}
        self._next_counter = 0
        self.armed_chains = 0
        nic.triggered = self

    # -- counters ------------------------------------------------------------------
    def counter(self, name: str = "") -> TriggerCounter:
        cid = self._next_counter
        self._next_counter += 1
        c = TriggerCounter(self, cid, name=name)
        self.counters[cid] = c
        return c

    def on_doorbell(self, counter_id: int, amount: int) -> None:
        """BAR counter-doorbell entry point (called by the NIC's page
        handler).  Pays the decode stage, then ticks."""
        counter = self.counters.get(counter_id)
        if counter is None:
            self.nic.rma.async_errors.append(TriggeredError(
                f"{self.nic.name}: doorbell for unknown counter "
                f"{counter_id}"))
            return
        self.stats.doorbells += 1
        trc = self.sim.tracer
        if trc.wants("trig.tick"):
            trc.instant("trig.tick", "doorbell", track=f"{self.nic.name}.trig",
                        counter=counter.name, amount=amount)
        self.sim.call_later(self.config.trigger_time,
                            lambda: counter.add(amount),
                            name=f"{self.nic.name}.trig-doorbell")

    def device_tick(self, ctx, page_addr: int, counter: TriggerCounter,
                    amount: int = 1):
        """Device code: tick ``counter`` with ONE posted 8-byte store to the
        requester page's counter doorbell.  ``page_addr`` may be any of this
        NIC's mapped requester pages."""
        word = (counter.id << 16) | (amount & 0xFFFF)
        yield from ctx.store_u64(
            page_addr + self.config.trigger_doorbell_offset, word)

    # -- completion counting -------------------------------------------------------
    def count_arrivals(self, counter: TriggerCounter, port: Optional[int] = None,
                       nla_base: Optional[int] = None, nla_size: int = 0,
                       amount: int = 1) -> Callable[[], None]:
        """Tick ``counter`` for every put that completes on THIS NIC,
        optionally filtered by the descriptor's port and/or a destination
        NLA window — puts-with-counting, implemented exactly like the
        reliability layer's duplicate detectors.  Returns an unregister
        callable."""

        def listener(packet) -> None:
            if port is not None and packet.meta.get("port") != port:
                return
            if nla_base is not None:
                dst = packet.meta.get("dst_nla", -1)
                if not nla_base <= dst < nla_base + nla_size:
                    return
            counter.add(amount)

        self.nic.rma.put_listeners.append(listener)

        def unregister() -> None:
            try:
                self.nic.rma.put_listeners.remove(listener)
            except ValueError:
                pass
        return unregister

    @staticmethod
    def count_cqes(cq, counter: TriggerCounter, amount: int = 1,
                   ) -> Callable[[], None]:
        """Tick ``counter`` for every CQE an InfiniBand HCA lands in ``cq``
        — the IB flavor of counting completions.  Returns an unregister
        callable."""

        def listener(_cqe) -> None:
            counter.add(amount)

        cq.listeners.append(listener)

        def unregister() -> None:
            try:
                cq.listeners.remove(listener)
            except ValueError:
                pass
        return unregister

    # -- chains --------------------------------------------------------------------
    def chain(self, name: str = "") -> DescriptorChain:
        self.stats.chains_staged += 1
        return DescriptorChain(self, name=name)

    def arm(self, chain: DescriptorChain, counter: TriggerCounter,
            threshold: int) -> None:
        if chain.state is not ChainState.STAGED:
            raise TriggeredError(
                f"{chain.name}: cannot arm a {chain.state.value} chain")
        if not chain.wrs:
            raise TriggeredError(f"{chain.name}: arming an empty chain")
        chain.state = ChainState.ARMED
        self.stats.chains_armed += 1
        self.armed_chains += 1
        # watch() fires synchronously if the counter is already past the
        # threshold, so arm-after-tick and tick-after-arm behave alike.
        chain._watch = counter.watch(threshold, lambda: self._fire(chain))

    def fire_now(self, chain: DescriptorChain, via: str = "direct") -> None:
        """Fire without a counter (stream enqueue, explicit go)."""
        if chain.state is ChainState.ARMED:
            # Stream order reached an armed chain: detach it from its
            # counter and fire through the same path.
            chain._watch.cancel()
            chain._watch = None
            self.armed_chains -= 1
            chain.state = ChainState.STAGED
        if chain.state is not ChainState.STAGED:
            raise TriggeredError(
                f"{chain.name}: cannot fire a {chain.state.value} chain")
        if not chain.wrs:
            raise TriggeredError(f"{chain.name}: firing an empty chain")
        if via == "stream":
            self.stats.stream_enqueues += 1
        self._launch(chain)

    def _fire(self, chain: DescriptorChain) -> None:
        # Counter threshold reached.
        chain._watch = None
        self.armed_chains -= 1
        self._launch(chain)

    def _launch(self, chain: DescriptorChain) -> None:
        chain.state = ChainState.FIRED
        chain._remaining = len(chain.wrs)
        self.stats.chains_fired += 1
        self.stats.descriptors_fired += len(chain.wrs)
        trc = self.sim.tracer
        span = (trc.begin("trig", f"fire:{chain.name}",
                          track=f"{self.nic.name}.trig",
                          descriptors=len(chain.wrs))
                if trc.enabled else NULL_SPAN)
        if trc.wants("causal"):
            trc.flow_event("chain.fire", f"{self.nic.name}.trig",
                           chain=chain.name, descriptors=len(chain.wrs))

        def post() -> None:
            wrs = [self._hooked(wr, chain) for wr in chain.wrs]
            if trc.wants("causal"):
                # Chain-fired descriptors never touch a BAR; their causal
                # `pst` happens here, on the NIC.  ``wait_hint`` (set by
                # whoever armed the chain, e.g. the MPI layer) names the
                # address whose delivery the arming counter was counting —
                # the credit->send edge of the DAG.
                hint = getattr(chain, "wait_hint", None)
                for wr in wrs:
                    trc.flow_event("pst", f"{self.nic.name}.trig",
                                   addr=(wr.dst_node, wr.dst_nla),
                                   via="chain", chain=chain.name,
                                   wait_hint=hint)
            self.nic.rma.post_many(wrs)
            span.end()

        # The firing stage: one trigger_time of NIC-internal scheduling,
        # then the descriptors enter the requester pipeline.
        self.sim.call_later(self.config.trigger_time, post,
                            name=f"{self.nic.name}.chain-fire")

    def _hooked(self, wr: RmaWorkRequest,
                chain: DescriptorChain) -> TriggeredWorkRequest:
        prior = getattr(wr, "on_started", None)

        def started() -> None:
            if prior is not None:
                prior()
            self._wr_started(chain)

        return TriggeredWorkRequest(
            op=wr.op, port=wr.port, dst_node=wr.dst_node, src_nla=wr.src_nla,
            dst_nla=wr.dst_nla, size=wr.size, flags=wr.flags,
            on_started=started)

    def _wr_started(self, chain: DescriptorChain) -> None:
        chain._remaining -= 1
        if chain._remaining == 0:
            chain.state = ChainState.COMPLETED
            self.stats.chains_completed += 1
            trc = self.sim.tracer
            if trc.wants("causal"):
                trc.flow_event("chain.done", f"{self.nic.name}.trig",
                               chain=chain.name)
            for counter, amount in chain.completion_ticks:
                counter.add(amount)
            chain.completed.succeed()

    def cancel(self, chain: DescriptorChain) -> None:
        """Retire a staged or armed-but-never-fired chain without leaking
        its counter watch."""
        if chain.state is ChainState.ARMED:
            chain._watch.cancel()
            chain._watch = None
            self.armed_chains -= 1
        elif chain.state is not ChainState.STAGED:
            raise TriggeredError(
                f"{chain.name}: cannot cancel a {chain.state.value} chain")
        chain.state = ChainState.CANCELLED
        self.stats.chains_cancelled += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TriggeredUnit {self.nic.name} counters="
                f"{len(self.counters)} armed={self.armed_chains}>")


def triggered_unit(node) -> TriggeredUnit:
    """The node's triggered unit, creating it on first use."""
    if node.nic is not None and getattr(node.nic, "triggered", None) is not None:
        return node.nic.triggered
    return TriggeredUnit(node)
