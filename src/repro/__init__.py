"""repro — a full-system reproduction of

    Klenk, Oden, Froning: "Analyzing Put/Get APIs for Thread-Collaborative
    Processors", ICPP 2014

on a simulated two-node GPU cluster.  See README.md for the architecture and
EXPERIMENTS.md for the paper-vs-measured comparison of every table and
figure.
"""

from .cluster import TOPOLOGIES, Cluster, build_extoll_cluster, build_ib_cluster
from .node import Node, NodeConfig
from .sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "TOPOLOGIES",
    "build_extoll_cluster",
    "build_ib_cluster",
    "Node",
    "NodeConfig",
    "Simulator",
    "__version__",
]
