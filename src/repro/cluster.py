"""Testbeds: the paper's two-node pairs (§V) and N-node topologies.

* :func:`build_extoll_cluster` — N nodes with EXTOLL Galibier cards,
* :func:`build_ib_cluster` — two nodes with InfiniBand 4X FDR HCAs.

Both give you a :class:`Cluster` holding the shared simulator, the nodes,
and the network fabric between them.  The default is the paper's testbed —
two nodes, one cable — but the EXTOLL builder also wires

* ``ring``   — node i cabled to i±1; non-adjacent traffic is relayed
  store-and-forward around the ring,
* ``full``   — a cable between every pair, single-hop everywhere,
* ``switch`` — a star through a central store-and-forward switch
  (every path is exactly two hops).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .errors import ConfigError
from .network import NetworkFabric
from .node import Node, NodeConfig
from .sim import Simulator

#: Topology names accepted by :func:`build_extoll_cluster`.
TOPOLOGIES = ("pair", "ring", "full", "switch")


@dataclass
class Cluster:
    sim: Simulator
    nodes: List[Node]
    net: NetworkFabric
    topology: str = "pair"

    @property
    def a(self) -> Node:
        return self.nodes[0]

    @property
    def b(self) -> Node:
        return self.nodes[1]

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def __len__(self) -> int:
        return len(self.nodes)

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)


def _base_cluster(node_config: Optional[NodeConfig], sim: Optional[Simulator],
                  num_nodes: int, topology: str) -> Cluster:
    if num_nodes < 2:
        raise ConfigError(f"a cluster needs at least 2 nodes, got {num_nodes}")
    sim = sim or Simulator()
    net = NetworkFabric(sim)
    nodes = [Node(sim, i, node_config) for i in range(num_nodes)]
    return Cluster(sim, nodes, net, topology)


def _resolve_topology(topology: str, num_nodes: int) -> str:
    if topology == "auto":
        topology = "pair" if num_nodes == 2 else "ring"
    if topology not in TOPOLOGIES:
        raise ConfigError(
            f"unknown topology {topology!r} (choose from {TOPOLOGIES})")
    if topology == "pair" and num_nodes != 2:
        raise ConfigError("'pair' topology is exactly two nodes")
    # A two-node ring would need a duplicate cable; it degenerates to the
    # paper's back-to-back pair, as does a two-node full mesh.
    if num_nodes == 2 and topology in ("ring", "full"):
        topology = "pair"
    return topology


def _wire_topology(cluster: Cluster, topology: str, link_config) -> list:
    """Cable the fabric and return each node's NIC attachment (an Endpoint
    for single-link nodes, a RouterEndpoint for multi-link ones)."""
    net, n = cluster.net, len(cluster.nodes)
    if topology == "pair":
        ep_a, ep_b = net.connect(0, 1, link_config)
        return [ep_a, ep_b]
    if topology == "ring":
        for i in range(n):
            net.connect(i, (i + 1) % n, link_config)
        attachments = [net.make_router(i) for i in range(n)]
    elif topology == "full":
        for i in range(n):
            for j in range(i + 1, n):
                net.connect(i, j, link_config)
        attachments = [net.make_router(i) for i in range(n)]
    elif topology == "switch":
        switch_id = n  # an id no NIC uses: every arriving packet is transit
        for i in range(n):
            net.connect(i, switch_id, link_config)
        net.make_router(switch_id)
        attachments = [net.endpoint(i) for i in range(n)]
    else:  # pragma: no cover - _resolve_topology already validated
        raise ConfigError(f"unknown topology {topology!r}")
    net.compute_routes()
    return attachments


def build_extoll_cluster(node_config: Optional[NodeConfig] = None,
                         nic_config=None,
                         sim: Optional[Simulator] = None,
                         num_nodes: int = 2,
                         topology: str = "auto") -> Cluster:
    """``num_nodes`` nodes with EXTOLL cards on the requested topology.

    The default (two nodes, ``pair``) is the paper's testbed: one cable,
    no routing anywhere on the path.
    """
    from .extoll import ExtollConfig

    nic_config = nic_config or ExtollConfig()
    topology = _resolve_topology(topology, num_nodes)
    cluster = _base_cluster(node_config, sim, num_nodes, topology)
    attachments = _wire_topology(cluster, topology, nic_config.link)
    for node, attachment in zip(cluster.nodes, attachments):
        node.attach_extoll(attachment, nic_config)
    return cluster


def build_ib_cluster(node_config: Optional[NodeConfig] = None,
                     nic_config=None,
                     sim: Optional[Simulator] = None) -> Cluster:
    """Two nodes with InfiniBand 4X FDR HCAs on one subnet."""
    from .ib import IbConfig

    nic_config = nic_config or IbConfig()
    cluster = _base_cluster(node_config, sim, 2, "pair")
    ep_a, ep_b = cluster.net.connect(0, 1, nic_config.link)
    cluster.nodes[0].attach_ib(ep_a, nic_config)
    cluster.nodes[1].attach_ib(ep_b, nic_config)
    return cluster
