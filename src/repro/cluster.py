"""Two-node testbeds, wired like the paper's (§V).

* :func:`build_extoll_cluster` — two nodes with EXTOLL Galibier cards,
* :func:`build_ib_cluster` — two nodes with InfiniBand 4X FDR HCAs.

Both give you a :class:`Cluster` holding the shared simulator, the two
nodes, and the network fabric between them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .network import NetworkFabric
from .node import Node, NodeConfig
from .sim import Simulator


@dataclass
class Cluster:
    sim: Simulator
    nodes: List[Node]
    net: NetworkFabric

    @property
    def a(self) -> Node:
        return self.nodes[0]

    @property
    def b(self) -> Node:
        return self.nodes[1]

    def run(self, until: Optional[float] = None) -> None:
        self.sim.run(until=until)


def _base_cluster(node_config: Optional[NodeConfig],
                  sim: Optional[Simulator]) -> Cluster:
    sim = sim or Simulator()
    net = NetworkFabric(sim)
    nodes = [Node(sim, 0, node_config), Node(sim, 1, node_config)]
    return Cluster(sim, nodes, net)


def build_extoll_cluster(node_config: Optional[NodeConfig] = None,
                         nic_config=None,
                         sim: Optional[Simulator] = None) -> Cluster:
    """Two nodes with EXTOLL cards connected back to back."""
    from .extoll import ExtollConfig

    nic_config = nic_config or ExtollConfig()
    cluster = _base_cluster(node_config, sim)
    ep_a, ep_b = cluster.net.connect(0, 1, nic_config.link)
    cluster.nodes[0].attach_extoll(ep_a, nic_config)
    cluster.nodes[1].attach_extoll(ep_b, nic_config)
    return cluster


def build_ib_cluster(node_config: Optional[NodeConfig] = None,
                     nic_config=None,
                     sim: Optional[Simulator] = None) -> Cluster:
    """Two nodes with InfiniBand 4X FDR HCAs on one subnet."""
    from .ib import IbConfig

    nic_config = nic_config or IbConfig()
    cluster = _base_cluster(node_config, sim)
    ep_a, ep_b = cluster.net.connect(0, 1, nic_config.link)
    cluster.nodes[0].attach_ib(ep_a, nic_config)
    cluster.nodes[1].attach_ib(ep_b, nic_config)
    return cluster
