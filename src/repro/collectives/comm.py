"""Communicators: ring channels plus mode-dispatched point-to-point ops.

A :class:`Communicator` owns one :class:`~repro.core.msglib.Channel` per
ring edge of an N-node cluster (channel ``k`` connects ranks ``k`` and
``k+1 (mod N)``, pinned to port id ``k`` on both NICs — completer
notifications are routed by the port id the put descriptor carries, so both
ends of a channel must open the SAME id).  Every ring algorithm in
:mod:`repro.collectives.algorithms` only ever talks to its ring neighbors,
so these N channels are all the connectivity any of them needs, on any of
the fabric topologies (``pair``/``ring``/``full``/``switch``).

Each rank drives its channels through a :class:`RankComm`, whose ``send`` /
``recv`` generators dispatch on the :class:`CollectiveMode`:

* ``dev2dev-pollOnGPU`` — device threads post puts and spin on headers in
  device memory; zero notifications (the §VI msglib design).
* ``dev2dev-direct``    — device threads post notified puts and poll the
  requester/completer queues in host memory (§III-C), one PCIe round trip
  per poll.
* ``hostControlled``    — host threads drive the NIC with the §III-B API;
  flow-control state lives in host memory so the CPUs poll out of cache.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Tuple

from ..cluster import Cluster
from ..errors import BenchmarkError
from ..extoll import (
    NotificationCursor,
    NotifyFlags,
    RmaOp,
    RmaWorkRequest,
    rma_post,
    rma_wait_notification,
)
from ..core.gpu_rma import gpu_rma_wait_notification
from ..core.msglib import (
    _HEADER_BYTES,
    _LEN_MASK,
    _SEQ_SHIFT,
    Channel,
    ChannelEnd,
    create_channel_between,
    gpu_recv,
    gpu_recv_ready,
    gpu_send,
)

_NOTIFIED = NotifyFlags.REQUESTER | NotifyFlags.COMPLETER


class CollectiveMode(enum.Enum):
    """Who drives the NIC and where completion is detected."""

    POLL_ON_GPU = "dev2dev-pollOnGPU"
    DIRECT = "dev2dev-direct"
    HOST_CONTROLLED = "hostControlled"

    @property
    def host_driven(self) -> bool:
        return self is CollectiveMode.HOST_CONTROLLED


def collective_mode(name: str) -> CollectiveMode:
    for mode in CollectiveMode:
        if mode.value == name:
            return mode
    valid = ", ".join(m.value for m in CollectiveMode)
    raise BenchmarkError(f"unknown collective mode {name!r} "
                         f"(choose from: {valid})")


class Communicator:
    """N ranks (one per cluster node) wired with ring or all-pairs channels.

    ``connectivity="ring"`` (the default) lays one channel per ring edge —
    all the ring collectives need.  ``connectivity="full"`` wires every
    pair of ranks (the same all-pairs layout :class:`repro.mpi`'s
    communicator uses), which the service workloads' all-to-all and fan-in
    patterns require; ring algorithms run unchanged on top of it.
    """

    def __init__(self, cluster: Cluster,
                 mode: CollectiveMode = CollectiveMode.POLL_ON_GPU,
                 slot_size: int = 256, slots: int = 16,
                 reliable: bool = False, reliability_config=None,
                 connectivity: str = "ring") -> None:
        self.cluster = cluster
        self.mode = mode
        self.size = len(cluster)
        if self.size < 2:
            raise BenchmarkError("a communicator needs at least 2 ranks")
        if connectivity not in ("ring", "full"):
            raise BenchmarkError(
                f"unknown connectivity {connectivity!r} "
                f"(choose from: ring, full)")
        self.connectivity = connectivity
        self.slot_size = slot_size
        self.reliable = reliable
        self._channels: Dict[Tuple[int, int], Channel] = {}
        # Replayed puts must re-arm the receive path: both notified modes
        # (direct and hostControlled) wait on completer notifications, so
        # their retransmissions carry the COMPLETER flag; pollOnGPU spins on
        # the slot header and replays stay notification-free.
        replay_flags = (NotifyFlags.NONE if mode is CollectiveMode.POLL_ON_GPU
                        else NotifyFlags.COMPLETER)
        # Two nodes share ONE bidirectional channel (a 2-ring would lay a
        # duplicate channel over the same pair).
        if connectivity == "full":
            edges = [(i, j) for i in range(self.size)
                     for j in range(i + 1, self.size)]
        elif self.size == 2:
            edges = [(0, 1)]
        else:
            edges = [(k, (k + 1) % self.size) for k in range(self.size)]
        for port_id, (i, j) in enumerate(edges):
            self._channels[(min(i, j), max(i, j))] = create_channel_between(
                cluster, cluster.node(i), cluster.node(j),
                slot_size=slot_size, slots=slots, port_id=port_id,
                map_notifications=(mode is CollectiveMode.DIRECT),
                control_space="host" if mode.host_driven else "gpu",
                reliable=reliable, reliability_config=reliability_config,
                replay_flags=replay_flags)
        self.ranks = [RankComm(self, r) for r in range(self.size)]

    @property
    def reliability_engines(self) -> List:
        """Every direction's ChannelReliability engine (empty when the
        communicator was built without ``reliable=True``)."""
        out = []
        for _, channel in sorted(self._channels.items()):
            for end in (channel.a_to_b, channel.b_to_a):
                if end.reliability is not None:
                    out.append(end.reliability)
        return out

    @property
    def retransmits(self) -> int:
        return sum(e.retransmits for e in self.reliability_engines)

    # -- uniform stats protocol ---------------------------------------------------
    GAUGES = ("outstanding",)

    def snapshot(self) -> Dict[str, int]:
        """Aggregate reliability stats across every engine, in the uniform
        ``snapshot()/diff()`` shape the telemetry sampler polls."""
        out = {"retransmits": 0, "timeouts": 0, "ack_replays": 0,
               "exhausted": 0, "outstanding": 0}
        for engine in self.reliability_engines:
            for name, value in engine.snapshot().items():
                out[name] += value
        return out

    def diff(self, earlier: Dict[str, int]) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for name, value in self.snapshot().items():
            if name in self.GAUGES:
                out[name] = value
            else:
                out[name] = value - earlier.get(name, 0)
        return out

    def check_reliability_errors(self) -> None:
        """Raise the first RetryExhaustedError any engine recorded."""
        for engine in self.reliability_engines:
            if engine.error is not None:
                raise engine.error

    def channel(self, a: int, b: int) -> Channel:
        try:
            return self._channels[(min(a, b), max(a, b))]
        except KeyError:
            raise BenchmarkError(
                f"ranks {a} and {b} are not ring neighbors "
                f"(size {self.size}); ring collectives only wire "
                f"rank k <-> k+1 (build with connectivity='full' for "
                f"all-pairs traffic)") from None

    def launch(self, body, *extra) -> List:
        """Start ``body(ctx, rank_comm, *extra)`` on every rank — as a
        device kernel for the GPU-driven modes, as a host thread for
        ``hostControlled`` — and return the completion handles."""
        handles = []
        for rc in self.ranks:
            if self.mode.host_driven:
                def host_body(ctx, rc=rc):
                    yield from body(ctx, rc, *extra)
                handles.append(rc.node.cpu.spawn(
                    host_body, name=f"coll-rank{rc.rank}"))
            else:
                handles.append(rc.node.gpu.launch(body, args=(rc,) + extra))
        return handles


class RankComm:
    """One rank's view of the communicator: neighbor ids plus mode-correct
    ``send``/``recv``/``compute`` generators for device or host code."""

    def __init__(self, comm: Communicator, rank: int) -> None:
        self.comm = comm
        self.rank = rank
        self.size = comm.size
        self.node = comm.cluster.node(rank)
        self.next = (rank + 1) % self.size
        self.prev = (rank - 1) % self.size
        # One persistent cursor per queue: notification read pointers are
        # hardware state that survives across operations.
        self._req_cursors: Dict[int, NotificationCursor] = {}
        self._cmpl_cursors: Dict[int, NotificationCursor] = {}

    @property
    def mode(self) -> CollectiveMode:
        return self.comm.mode

    # -- channel plumbing --------------------------------------------------------
    def send_end(self, peer: int) -> ChannelEnd:
        return self.comm.channel(self.rank, peer).end_for_sender(self.rank)

    def recv_end(self, peer: int) -> ChannelEnd:
        return self.comm.channel(self.rank, peer).end_for_receiver(self.rank)

    def _req_cursor(self, peer: int) -> NotificationCursor:
        cur = self._req_cursors.get(peer)
        if cur is None:
            cur = self._req_cursors[peer] = NotificationCursor(
                self.send_end(peer).port.requester_queue)
        return cur

    def _cmpl_cursor(self, peer: int) -> NotificationCursor:
        # Arrivals from ``peer`` notify the completer queue of *this* node's
        # port on the shared channel (puts carry the channel's port id).
        cur = self._cmpl_cursors.get(peer)
        if cur is None:
            cur = self._cmpl_cursors[peer] = NotificationCursor(
                self.send_end(peer).port.completer_queue)
        return cur

    # -- mode-dispatched primitives ----------------------------------------------
    def compute(self, ctx, amount: int):
        """Charge ``amount`` instructions of local arithmetic (reductions)."""
        if self.mode.host_driven:
            yield from ctx.compute(amount)
        else:
            yield from ctx.alu(amount)

    def send(self, ctx, peer: int, data: bytes):
        """Send one message to a ring neighbor.

        ``pollOnGPU`` returns as soon as the put is posted (credit
        backpressure only); ``direct`` and ``hostControlled`` additionally
        wait for the requester notification, so completion of the local
        send is known before the next algorithm step.
        """
        end = self.send_end(peer)
        if self.mode is CollectiveMode.POLL_ON_GPU:
            yield from gpu_send(ctx, end, data)
        elif self.mode is CollectiveMode.DIRECT:
            yield from gpu_send(ctx, end, data, flags=_NOTIFIED)
            yield from gpu_rma_wait_notification(ctx, self._req_cursor(peer))
            trc = ctx.sim.tracer
            if trc.wants("causal"):
                # gpu_send advanced next_seq; re-derive the slot just sent.
                seq = end.next_seq - 1
                trc.flow_event(
                    "snd.done", f"n{end.src_node_id}",
                    addr=(end.dst_node_id,
                          end.ring_nla.base + end.slot_offset(seq)),
                    seq=seq)
        else:
            yield from self._host_send(ctx, end, peer, data)

    def recv(self, ctx, peer: int):
        """Receive the next message from a ring neighbor; returns bytes."""
        end = self.recv_end(peer)
        reverse = self.send_end(peer)
        if self.mode is CollectiveMode.POLL_ON_GPU:
            return (yield from gpu_recv(ctx, end, reverse))
        if self.mode is CollectiveMode.DIRECT:
            trc = ctx.sim.tracer
            if trc.wants("causal"):
                # Stamp the receive at its CALL time, before the
                # notification wait: the consume helpers run after the
                # wait, and a late ``rcv`` would re-anchor the walk past
                # the remote delivery, hiding the blocked-on-remote join.
                seq = end.consumed + 1
                trc.flow_event(
                    "rcv", f"n{end.dst_node_id}",
                    addr=(end.dst_node_id,
                          end.ring_nla.base + end.slot_offset(seq)),
                    seq=seq, via="notif")
            yield from gpu_rma_wait_notification(ctx, self._cmpl_cursor(peer))
            if self.comm.reliable:
                # Under faults a completer notification may belong to a
                # duplicate (replayed) put, so it no longer proves THIS
                # message arrived — fall back to spinning on the header.
                return (yield from gpu_recv(ctx, end, reverse,
                                            announce=False))
            return (yield from gpu_recv_ready(ctx, end, reverse,
                                              announce=False))
        return (yield from self._host_recv(ctx, end, reverse, peer))

    # -- hostControlled implementation --------------------------------------------
    # The CPU runs the §III-B librma API over the same slot rings.  Payloads
    # stay in device memory end to end (GPUDirect); the staging/drain below
    # is functional — the producing/consuming device kernels are represented
    # by the explicit ``compute`` charges, the CPU only assembles
    # descriptors and polls notifications, exactly the paper's
    # hostControlled division of labor.

    def _host_send(self, ctx, end: ChannelEnd, peer: int, data: bytes):
        if len(data) > end.payload_capacity:
            raise BenchmarkError(
                f"message of {len(data)} bytes exceeds slot payload "
                f"{end.payload_capacity}")
        seq = end.next_seq
        trc = ctx.sim.tracer
        causal = trc.wants("causal")
        if causal:
            addr = (end.dst_node_id, end.ring_nla.base + end.slot_offset(seq))
            actor = f"n{end.src_node_id}"
            trc.flow_event("snd", actor, addr=addr, seq=seq, bytes=len(data))
        gated = seq - 1 >= end.slots
        if gated:
            min_credit = seq - end.slots
            yield from ctx.spin_until_u64(end.credit_word.base,
                                          lambda v, m=min_credit: v >= m)
        if causal:
            trc.flow_event("crd", actor, addr=addr, seq=seq, gated=gated,
                           waited_on=(end.src_node_id,
                                      end.credit_word_nla.base))
        stage = end.staging.base + end.slot_offset(seq)
        gpu = self.node.gpu
        padded = data + bytes(-len(data) % 8)
        if padded:
            gpu.dram.write(stage, padded)
        gpu.dram.write_u64(stage + end.slot_size - _HEADER_BYTES,
                           (seq << _SEQ_SHIFT) | len(data))
        yield from ctx.compute(4 + len(data) // 8)  # kernel producing the slot
        if causal:
            trc.flow_event("stg", actor, addr=addr, seq=seq, via="host",
                           bytes=len(data))
        wr = RmaWorkRequest(
            op=RmaOp.PUT, port=end.port_id, dst_node=end.dst_node_id,
            src_nla=end.staging_nla.base + end.slot_offset(seq),
            dst_nla=end.ring_nla.base + end.slot_offset(seq),
            size=end.slot_size, flags=_NOTIFIED)
        yield from rma_post(ctx, end.page_addr, wr)
        if causal:
            trc.flow_event("pst", actor, addr=addr, seq=seq, via="host")
        yield from rma_wait_notification(ctx, self._req_cursor(peer))
        if causal:
            trc.flow_event("snd.done", actor, addr=addr, seq=seq)
        end.next_seq += 1
        if end.reliability is not None:
            end.reliability.note_send(seq)

    def _host_recv(self, ctx, end: ChannelEnd, reverse: ChannelEnd,
                   peer: int):
        trc = ctx.sim.tracer
        causal = trc.wants("causal")
        if causal:
            trc.flow_event(
                "rcv", f"n{end.dst_node_id}",
                addr=(end.dst_node_id,
                      end.ring_nla.base + end.slot_offset(end.consumed + 1)),
                seq=end.consumed + 1, via="notif")
        yield from rma_wait_notification(ctx, self._cmpl_cursor(peer))
        seq = end.consumed + 1
        gpu = self.node.gpu
        slot = end.ring.base + end.slot_offset(seq)
        header = gpu.dram.read_u64(slot + end.slot_size - _HEADER_BYTES)
        while (header >> _SEQ_SHIFT) != seq:
            if not self.comm.reliable:
                raise BenchmarkError(
                    f"host recv: slot carries seq {header >> _SEQ_SHIFT}, "
                    f"expected {seq}")
            # Under faults the notification may belong to a duplicate
            # (replayed) put; wait for the real message to land.
            yield from ctx.sleep(2e-6)
            header = gpu.dram.read_u64(slot + end.slot_size - _HEADER_BYTES)
        length = header & _LEN_MASK
        data = bytes(gpu.dram.read(slot, length)) if length else b""
        yield from ctx.compute(4 + length // 8)  # kernel draining the slot
        end.consumed = seq
        if causal:
            trc.flow_event("rcd", f"n{end.dst_node_id}",
                           addr=(end.dst_node_id,
                                 end.ring_nla.base + end.slot_offset(seq)),
                           seq=seq, via="notif", bytes=length)
        if (end.consumed - end.credits_returned
                >= (end.credit_interval or max(1, end.slots // 2))):
            yield from ctx.write_u64(end.credit_staging.base, end.consumed)
            credit_wr = RmaWorkRequest(
                op=RmaOp.PUT, port=reverse.port_id,
                dst_node=reverse.dst_node_id,
                src_nla=end.credit_staging_nla.base,
                dst_nla=end.credit_word_nla.base, size=8,
                flags=NotifyFlags.NONE)
            yield from rma_post(ctx, reverse.page_addr, credit_wr)
            end.credits_returned = end.consumed
        return data
