"""``python -m repro collectives`` — scaling sweeps and traced runs.

Without ``--trace``: sweep operation x node count x message size, print the
latency/bandwidth/step table, and exit non-zero if any result failed its
functional check.

With ``--trace [PATH]``: run ONE configuration (the first op/N/size of the
sweep) with a :class:`~repro.obs.SpanTracer` installed, export a Chrome
trace-event JSON (Perfetto / ``chrome://tracing``), and reconcile the
summed per-operation phase spans against the reported latency — they must
agree within 1%.

Examples::

    python -m repro collectives --op all-reduce --nodes 2,4,8 --sizes 64,256
    python -m repro collectives --trace coll.json --op all-reduce --nodes 4
    python -m repro collectives --quick        # CI smoke subset
"""

from __future__ import annotations

import argparse
import sys

from ..cluster import TOPOLOGIES
from ..obs import SpanTracer
from ..obs.export import (
    chrome_trace_events,
    phase_breakdown,
    render_breakdown,
    validate_chrome_trace,
    write_chrome_trace,
)
from ..sim import Simulator
from .bench import (OPS, build_communicator, op_connectivity,
                    op_max_payload, render_results, run_collective, sweep)
from .comm import CollectiveMode, collective_mode

#: Reconciliation tolerance between traced phase time and reported latency.
TRACE_TOLERANCE = 0.01


def _csv_ints(text: str, what: str):
    try:
        values = [int(v) for v in text.split(",") if v.strip()]
    except ValueError:
        raise SystemExit(f"bad {what} list {text!r}")
    if not values:
        raise SystemExit(f"empty {what} list")
    return values


def reconcile_trace(tracer: SpanTracer, op: str, result,
                    tolerance: float = TRACE_TOLERANCE) -> dict:
    """Compare the summed ``phase`` spans named ``op`` with
    ``latency * iterations``; both clocks sample rank 0's driver loop."""
    stat = phase_breakdown(tracer).get(op)
    traced = stat.total if stat else 0.0
    expected = result.point.latency * result.iterations
    rel_err = (abs(traced - expected) / expected if expected > 0
               else (0.0 if traced == 0.0 else float("inf")))
    return {"phase": op, "traced": traced, "expected": expected,
            "rel_err": rel_err, "ok": rel_err <= tolerance}


def run_traced_collective(op: str, nodes: int, size: int,
                          mode: CollectiveMode, topology: str,
                          iterations: int, warmup: int,
                          tracer: SpanTracer | None = None):
    """Build a traced cluster, run one collective, return
    ``(tracer, result)``."""
    tracer = tracer or SpanTracer()
    sim = Simulator(tracer=tracer)
    cluster, comm = build_communicator(
        nodes, size, mode, topology, sim=sim,
        connectivity=op_connectivity(op),
        max_payload=op_max_payload(op, nodes, size))
    result = run_collective(cluster, comm, op, size,
                            iterations=iterations, warmup=warmup)
    return tracer, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro collectives",
        description="GPU-initiated collectives over put/get: scaling sweeps "
                    "and Chrome-trace export.")
    parser.add_argument("--op", default="all",
                        help=f"operation, or 'all' (choices: "
                             f"{', '.join(OPS)}; default: all)")
    parser.add_argument("--nodes", default="2,4",
                        help="comma-separated node counts (default: 2,4)")
    parser.add_argument("--sizes", default="8,64,256",
                        help="comma-separated per-message payload bytes, "
                             "multiples of 8 (default: 8,64,256)")
    parser.add_argument("--topology", default="auto",
                        choices=("auto",) + TOPOLOGIES,
                        help="fabric topology (default: auto = pair for 2 "
                             "nodes, ring otherwise)")
    parser.add_argument("--mode", default=CollectiveMode.POLL_ON_GPU.value,
                        choices=[m.value for m in CollectiveMode],
                        help="who drives the NIC "
                             "(default: dev2dev-pollOnGPU)")
    parser.add_argument("--iterations", type=int, default=8,
                        help="measured rounds per point (default: 8)")
    parser.add_argument("--warmup", type=int, default=2,
                        help="warmup rounds per point (default: 2)")
    parser.add_argument("--trace", nargs="?", const="collectives-trace.json",
                        default=None, metavar="PATH",
                        help="trace ONE configuration and write a Chrome "
                             "trace (default path: collectives-trace.json)")
    parser.add_argument("--quick", action="store_true",
                        help="small fixed sweep for CI smoke runs")
    args = parser.parse_args(argv)

    if args.quick:
        ops = ["barrier", "all-reduce"]
        node_counts, sizes = [2, 3], [64]
        iterations, warmup = 3, 1
    else:
        ops = list(OPS) if args.op == "all" else [args.op]
        for op in ops:
            if op not in OPS:
                raise SystemExit(f"unknown op {op!r} "
                                 f"(choose from: {', '.join(OPS)})")
        node_counts = _csv_ints(args.nodes, "node count")
        sizes = _csv_ints(args.sizes, "size")
        iterations, warmup = args.iterations, args.warmup
    mode = collective_mode(args.mode)

    if args.trace is not None:
        op = "all-reduce" if args.op == "all" else ops[0]
        nodes, size = node_counts[0], sizes[0]
        tracer, result = run_traced_collective(
            op, nodes, size, mode, args.topology, iterations, warmup)
        events = chrome_trace_events(tracer)
        validate_chrome_trace(events)
        write_chrome_trace(tracer, args.trace)

        print(f"{op} mode={mode.value} topology={result.topology} "
              f"N={nodes} size={size}B iterations={result.iterations}")
        print(f"latency per operation : {result.latency_us:10.3f} us")
        print(f"steps per rank        : {result.steps}")
        print(f"injected bandwidth    : {result.bandwidth.mb_per_s:10.1f} MB/s")
        print(f"functional check      : "
              f"{'OK' if result.correct else 'FAIL'}")
        print()
        print(render_breakdown(phase_breakdown(tracer)))
        recon = reconcile_trace(tracer, op, result)
        print()
        print(f"reconcile {recon['phase']:<14}: traced "
              f"{recon['traced'] * 1e6:.3f}us vs timing "
              f"{recon['expected'] * 1e6:.3f}us "
              f"(rel err {recon['rel_err'] * 100:.3f}%) "
              f"{'OK' if recon['ok'] else 'MISMATCH'}")
        print(f"{len(tracer.spans)} spans, {len(tracer.instants)} instants, "
              f"{len(tracer.tracks())} tracks -> {args.trace}")
        return 0 if (recon["ok"] and result.correct) else 1

    results = list(sweep(ops, node_counts, sizes, mode, args.topology,
                         iterations=iterations, warmup=warmup))
    print(render_results(results))
    bad = [r for r in results if not r.correct]
    if bad:
        print(f"\n{len(bad)} measurement(s) FAILED their functional check",
              file=sys.stderr)
    return 1 if bad else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
