"""GPU-initiated collective operations over put/get (§VIII future work).

The paper measures point-to-point put/get between two thread-collaborative
processors; this package grows that into N-node collectives built ON TOP of
the measured primitives: ring channels from :mod:`repro.core.msglib`, the
device-side RMA API of :mod:`repro.core.gpu_rma`, and the host-side API of
:mod:`repro.extoll.api`, over any :mod:`repro.cluster` topology.

* :mod:`~repro.collectives.comm` — :class:`Communicator` /
  :class:`RankComm`: ring channels, mode-dispatched send/recv.
* :mod:`~repro.collectives.algorithms` — barrier, broadcast, all-gather,
  ring all-reduce (``2*(N-1)`` steps), halo exchange.
* :mod:`~repro.collectives.bench` — the measured driver behind
  ``python -m repro collectives``.
"""

from .algorithms import all_gather, barrier, broadcast, halo_exchange, ring_all_reduce
from .bench import (
    OPS,
    CollectiveResult,
    build_communicator,
    render_results,
    run_collective,
    sweep,
)
from .comm import CollectiveMode, Communicator, RankComm, collective_mode

__all__ = [
    "CollectiveMode", "Communicator", "RankComm", "collective_mode",
    "barrier", "broadcast", "all_gather", "ring_all_reduce", "halo_exchange",
    "OPS", "CollectiveResult", "build_communicator", "run_collective",
    "sweep", "render_results",
]
