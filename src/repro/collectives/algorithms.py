"""Collective algorithms over :class:`~repro.collectives.comm.RankComm`.

Every algorithm is a generator that runs identically as device code (a
``ThreadCtx``) or host code (a ``HostThread``) — the mode-specific put/get
mechanics live entirely behind ``rc.send``/``rc.recv``/``rc.compute``.
The ring schedules only talk to ring neighbors; the recursive-halving and
binomial-tree all-reduces exchange with ``rank ^ dist`` partners and need
``connectivity="full"``.  All return ``(result, steps)`` where ``steps``
counts the point-to-point messages THIS rank sent — the quantity the
scaling analysis checks against each schedule's closed form (``2*(N-1)``
for the ring, ``2*log2 N`` for halving, ``log2 N`` for the tree).

Deadlock freedom: sends are buffered (the msglib slot ring gives ``slots``
messages of credit per direction), so the uniform send-before-recv order
used below never blocks on an unposted receive.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from ..errors import BenchmarkError

#: The 8-byte token circulated by :func:`barrier`.
_TOKEN = struct.pack("<Q", 0xB0)

#: Element-wise reduction operators understood by :func:`ring_all_reduce`
#: and mirrored by :func:`repro.mpi.collectives.iallreduce`.  Each combiner
#: is applied in the fixed ``owned OP incoming`` association order on both
#: paths, which is what keeps the two implementations bit-exact against
#: each other for every op — including the non-commutative-rounding ``sum``
#: and ``prod`` cases.
REDUCE_OPS = {
    "sum": lambda a, b: a + b,
    "max": lambda a, b: a if a >= b else b,
    "min": lambda a, b: a if a <= b else b,
    "prod": lambda a, b: a * b,
}


def resolve_reduce_op(op: str):
    """The combiner for ``op``, or :class:`BenchmarkError` with choices."""
    try:
        return REDUCE_OPS[op]
    except KeyError:
        raise BenchmarkError(
            f"unknown reduction op {op!r} "
            f"(choose from: {', '.join(sorted(REDUCE_OPS))})") from None


def _pack(chunk: List[float]) -> bytes:
    return struct.pack(f"<{len(chunk)}d", *chunk)


def _unpack(data: bytes) -> List[float]:
    return list(struct.unpack(f"<{len(data) // 8}d", data))


def barrier(ctx, rc) -> int:
    """Ring token barrier: rank 0 circulates a token around the ring twice.

    After the first sweep rank 0 knows everyone arrived; the second sweep
    releases everyone.  Returns the steps (sends) this rank performed (2).
    """
    steps = 0
    for _sweep in range(2):
        if rc.rank == 0:
            yield from rc.send(ctx, rc.next, _TOKEN)
            yield from rc.recv(ctx, rc.prev)
        else:
            yield from rc.recv(ctx, rc.prev)
            yield from rc.send(ctx, rc.next, _TOKEN)
        steps += 1
    return steps


def broadcast(ctx, rc, data: Optional[bytes] = None,
              root: int = 0) -> Tuple[bytes, int]:
    """Ring broadcast: the payload is relayed around the ring from ``root``,
    store-and-forward, ``N-1`` hops end to end (at most one send per rank).
    """
    pos = (rc.rank - root) % rc.size
    steps = 0
    if pos == 0:
        if data is None:
            raise BenchmarkError("broadcast root must supply data")
        yield from rc.send(ctx, rc.next, data)
        steps += 1
    else:
        data = yield from rc.recv(ctx, rc.prev)
        if pos != rc.size - 1:      # the last rank has nobody left to feed
            yield from rc.send(ctx, rc.next, data)
            steps += 1
    return data, steps


def all_gather(ctx, rc, contribution: bytes) -> Tuple[List[bytes], int]:
    """Ring all-gather in ``N-1`` steps: each step forwards the piece
    received in the previous step to ``next`` while receiving a new piece
    from ``prev``.  Returns the pieces indexed by originating rank."""
    n = rc.size
    pieces: List[Optional[bytes]] = [None] * n
    pieces[rc.rank] = contribution
    cur = contribution
    steps = 0
    for step in range(n - 1):
        yield from rc.send(ctx, rc.next, cur)
        cur = yield from rc.recv(ctx, rc.prev)
        pieces[(rc.rank - 1 - step) % n] = cur
        steps += 1
    return pieces, steps


def ring_all_reduce(ctx, rc, values: List[float],
                    op: str = "sum") -> Tuple[List[float], int]:
    """Bandwidth-optimal ring all-reduce of a float64 vector.

    The vector is split into ``N`` chunks; a reduce-scatter pass (``N-1``
    steps) leaves each rank with one fully reduced chunk, then an
    all-gather pass (``N-1`` steps) circulates the reduced chunks — the
    canonical ``2*(N-1)`` step schedule whose step count the analysis
    verifies.  Each step moves ``len(values)/N`` elements, so per-step cost
    is directly comparable to a 2-node ping-pong of the chunk size.

    ``op`` selects the element-wise reduction from :data:`REDUCE_OPS`
    (``sum``/``max``/``min``/``prod``); the combiner is always applied as
    ``op(owned, incoming)`` so the result is reproducible bit for bit.
    """
    combine = resolve_reduce_op(op)
    n = rc.size
    if not values or len(values) % n:
        raise BenchmarkError(
            f"all-reduce vector length {len(values)} must be a positive "
            f"multiple of the {n} ranks")
    chunk_len = len(values) // n
    chunks = [list(values[i * chunk_len:(i + 1) * chunk_len])
              for i in range(n)]
    steps = 0
    # Reduce-scatter: after step s, chunk (rank-s-1)%n holds partial sums
    # of s+2 contributions; after N-1 steps rank r owns the full sum of
    # chunk (r+1)%n.
    for s in range(n - 1):
        send_idx = (rc.rank - s) % n
        recv_idx = (rc.rank - s - 1) % n
        yield from rc.send(ctx, rc.next, _pack(chunks[send_idx]))
        incoming = _unpack((yield from rc.recv(ctx, rc.prev)))
        yield from rc.compute(ctx, 2 * chunk_len)  # fused add of one chunk
        chunks[recv_idx] = [combine(a, b)
                            for a, b in zip(chunks[recv_idx], incoming)]
        steps += 1
    # All-gather of the reduced chunks, starting from the one this rank owns.
    for s in range(n - 1):
        send_idx = (rc.rank + 1 - s) % n
        recv_idx = (rc.rank - s) % n
        yield from rc.send(ctx, rc.next, _pack(chunks[send_idx]))
        chunks[recv_idx] = _unpack((yield from rc.recv(ctx, rc.prev)))
        steps += 1
    return [v for chunk in chunks for v in chunk], steps


def rh_all_reduce(ctx, rc, values: List[float],
                  op: str = "sum") -> Tuple[List[float], int]:
    """Recursive-halving reduce-scatter + recursive-doubling allgather.

    ``2*log2(N)`` phases of pairwise exchanges with partner ``rank ^
    dist``; message size halves during the scatter and doubles back
    during the gather, so total bytes match the ring while the phase
    count drops from ``2(N-1)`` to logarithmic.  Needs a power-of-two
    rank count and all-pairs connectivity (``connectivity="full"``).

    The combiner is applied as ``op(owned, incoming)`` in a fixed window
    order, so the result is bit-exact against :func:`ring_all_reduce`
    for integer-valued inputs.
    """
    combine = resolve_reduce_op(op)
    n = rc.size
    if n & (n - 1):
        raise BenchmarkError(
            f"recursive halving needs a power-of-two rank count, got {n}")
    if not values or len(values) % n:
        raise BenchmarkError(
            f"all-reduce vector length {len(values)} must be a positive "
            f"multiple of the {n} ranks")
    out = list(values)
    steps = 0
    lo, hi = 0, len(out)                # this rank's active window
    dist = n // 2
    while dist >= 1:                    # reduce-scatter, halving
        partner = rc.rank ^ dist
        mid = (lo + hi) // 2
        if rc.rank & dist:              # I keep the upper half
            send_lo, send_hi, keep_lo, keep_hi = lo, mid, mid, hi
        else:
            send_lo, send_hi, keep_lo, keep_hi = mid, hi, lo, mid
        yield from rc.send(ctx, partner, _pack(out[send_lo:send_hi]))
        steps += 1
        incoming = _unpack((yield from rc.recv(ctx, partner)))
        yield from rc.compute(ctx, 2 * len(incoming))
        for i, v in enumerate(incoming):
            out[keep_lo + i] = combine(out[keep_lo + i], v)
        lo, hi = keep_lo, keep_hi
        dist //= 2
    dist = 1
    while dist < n:                     # allgather, doubling (mirror)
        partner = rc.rank ^ dist
        yield from rc.send(ctx, partner, _pack(out[lo:hi]))
        steps += 1
        incoming = _unpack((yield from rc.recv(ctx, partner)))
        if rc.rank & dist:              # partner held the half below mine
            out[2 * lo - hi:lo] = incoming
            lo = 2 * lo - hi
        else:
            out[hi:2 * hi - lo] = incoming
            hi = 2 * hi - lo
        dist *= 2
    return out, steps


def tree_all_reduce(ctx, rc, values: List[float],
                    op: str = "sum") -> Tuple[List[float], int]:
    """Binomial-tree reduce to rank 0 plus binomial broadcast back.

    ``2*ceil(log2 N)`` phases of full-vector messages; at most
    ``ceil(log2 N)`` sends per rank.  Latency-optimal for small vectors
    (the crossover the fabric sweep measures against the ring).  Needs
    all-pairs connectivity; any rank count works.
    """
    combine = resolve_reduce_op(op)
    n = rc.size
    if not values:
        raise BenchmarkError("all-reduce needs a non-empty vector")
    out = list(values)
    steps = 0
    mask = 1
    while mask < n:                     # reduce toward rank 0
        if rc.rank & mask:
            yield from rc.send(ctx, rc.rank ^ mask, _pack(out))
            steps += 1
            break                       # my subtree went up; wait for bcast
        src = rc.rank | mask
        if src < n:
            incoming = _unpack((yield from rc.recv(ctx, src)))
            yield from rc.compute(ctx, 2 * len(incoming))
            for i, v in enumerate(incoming):
                out[i] = combine(out[i], v)
        mask <<= 1
    # broadcast back down: receive from the parent (the lowest set bit),
    # then feed children below that bit, widest subtree first.
    recv_mask = rc.rank & -rc.rank if rc.rank else 0
    if rc.rank != 0:
        out = _unpack((yield from rc.recv(ctx, rc.rank ^ recv_mask)))
    m = recv_mask >> 1
    if rc.rank == 0:
        m = 1
        while m < n:
            m <<= 1
        m >>= 1
    while m >= 1:
        child = rc.rank | m
        if child < n and child != rc.rank:
            yield from rc.send(ctx, child, _pack(out))
            steps += 1
        m >>= 1
    return out, steps


def halo_exchange(ctx, rc, interior: bytes, halo_bytes: int,
                  periodic: bool = True):
    """1-D domain halo exchange with both ring neighbors.

    Sends the first/last ``halo_bytes`` of ``interior`` to ``prev``/``next``
    and receives the matching ghost regions.  ``periodic=False`` drops the
    exchange across the domain boundary (ranks 0 and N-1 keep a ``None``
    ghost on their outer side).  Returns ``((left_ghost, right_ghost),
    steps)``.

    Every rank sends its right edge before its left edge; with in-order
    channels this makes the first arrival from ``prev`` the left ghost even
    when N=2 collapses both neighbors onto one peer.
    """
    if halo_bytes <= 0 or len(interior) < 2 * halo_bytes:
        raise BenchmarkError(
            f"interior of {len(interior)} bytes cannot shed two "
            f"{halo_bytes}-byte halos")
    has_prev = periodic or rc.rank > 0
    has_next = periodic or rc.rank < rc.size - 1
    steps = 0
    if has_next:
        yield from rc.send(ctx, rc.next, interior[-halo_bytes:])
        steps += 1
    if has_prev:
        yield from rc.send(ctx, rc.prev, interior[:halo_bytes])
        steps += 1
    left_ghost = right_ghost = None
    if has_prev:
        left_ghost = yield from rc.recv(ctx, rc.prev)
    if has_next:
        right_ghost = yield from rc.recv(ctx, rc.next)
    return (left_ghost, right_ghost), steps
