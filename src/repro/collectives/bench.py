"""Benchmark driver for the collectives: build, run, time, verify.

One measurement launches the chosen operation on every rank for
``warmup + iterations`` rounds and reports

* a :class:`~repro.core.results.LatencyPoint` — elapsed time on rank 0 over
  the measured rounds, divided by ``iterations`` (one full operation),
* a :class:`~repro.core.results.BandwidthPoint` — total payload bytes all
  ranks injected during the measured rounds,
* the per-rank step count (``2*(N-1)`` for ring all-reduce — the scaling
  invariant), and
* a functional verdict: every rank's final result is checked against the
  exact expected value computed host-side.

When a :class:`~repro.obs.SpanTracer` is installed, rank 0 opens one
``phase``-category span per measured round, named after the operation.
Spans are opened/closed at the exact simulation times the latency
accumulator samples, so ``sum(span durations) == latency * iterations`` —
the reconciliation ``python -m repro collectives --trace`` enforces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..cluster import Cluster, build_extoll_cluster
from ..errors import BenchmarkError
from ..core.results import BandwidthPoint, LatencyPoint
from ..sim import NULL_SPAN, Simulator
from .algorithms import (all_gather, barrier, broadcast, halo_exchange,
                         rh_all_reduce, ring_all_reduce, tree_all_reduce)
from .comm import CollectiveMode, Communicator

#: Operations understood by :func:`run_collective` and the CLI.
OPS = ("barrier", "broadcast", "all-gather", "all-reduce", "all-reduce-rh",
       "all-reduce-tree", "halo")

#: Ops exchanging with ``rank ^ dist`` partners: need all-pairs channels.
FULL_CONNECTIVITY_OPS = ("all-reduce-rh", "all-reduce-tree")


def op_connectivity(op: str) -> str:
    return "full" if op in FULL_CONNECTIVITY_OPS else "ring"


def op_max_payload(op: str, nodes: int, size: int) -> int:
    """Largest single message ``op`` sends, for slot sizing.  The ring
    schedules move one ``size``-byte chunk per step; recursive halving's
    first exchange is half the ``nodes * size`` vector; the tree moves
    the whole vector."""
    if op == "all-reduce-rh":
        return max(size, nodes * size // 2)
    if op == "all-reduce-tree":
        return nodes * size
    return size

#: The barrier circulates a fixed 8-byte token regardless of ``--size``.
_TOKEN_BYTES = 8


def _round8(n: int) -> int:
    return (n + 7) // 8 * 8


def pattern(rank: int, size: int) -> bytes:
    """A deterministic per-rank payload (distinct across ranks)."""
    return bytes((37 * rank + 11 * i + 5) % 251 for i in range(size))


def vector(rank: int, nodes: int, size: int):
    """A deterministic per-rank float64 vector of ``nodes * size/8``
    elements (``size`` bytes travel per all-reduce step)."""
    length = nodes * (size // 8)
    return [float((7 * rank + 3 * i + 1) % 97) for i in range(length)]


@dataclass
class _Timing:
    start: float = 0.0
    end: float = 0.0


@dataclass(frozen=True)
class CollectiveResult:
    """One (operation, mode, topology, N, size) measurement."""

    op: str
    mode: str
    topology: str
    nodes: int
    size: int                 # payload bytes per point-to-point message
    iterations: int
    point: LatencyPoint       # latency = one full operation
    bandwidth: BandwidthPoint
    steps: int                # p2p sends per rank per operation (max)
    correct: bool

    @property
    def latency_us(self) -> float:
        return self.point.latency * 1e6


def build_communicator(num_nodes: int, size: int,
                       mode: CollectiveMode = CollectiveMode.POLL_ON_GPU,
                       topology: str = "auto", slots: int = 16,
                       sim: Optional[Simulator] = None,
                       reliable: bool = False,
                       reliability_config=None,
                       connectivity: str = "ring",
                       max_payload: Optional[int] = None,
                       ) -> Tuple[Cluster, Communicator]:
    """An EXTOLL cluster plus a communicator whose slots fit ``size``-byte
    payloads.  ``reliable`` arms the retransmission engines of
    :mod:`repro.faults` on every channel (required to survive an attached
    :class:`~repro.faults.FaultPlan`); ``connectivity="full"`` wires every
    rank pair instead of the ring edges; ``max_payload`` widens the slots
    beyond ``size`` for schedules whose messages grow with N (see
    :func:`op_max_payload`)."""
    if size < 8 or size % 8:
        raise BenchmarkError(
            f"collective payload size must be a positive multiple of 8, "
            f"got {size}")
    cluster = build_extoll_cluster(sim=sim, num_nodes=num_nodes,
                                   topology=topology)
    slot_size = max(64, _round8(max_payload or size) + 8)
    comm = Communicator(cluster, mode, slot_size=slot_size, slots=slots,
                        reliable=reliable,
                        reliability_config=reliability_config,
                        connectivity=connectivity)
    return cluster, comm


def _run_one(ctx, rc, op: str, size: int):
    """One operation on one rank; returns ``(result, steps)``."""
    if op == "barrier":
        steps = yield from barrier(ctx, rc)
        return None, steps
    if op == "broadcast":
        data = pattern(0, size) if rc.rank == 0 else None
        return (yield from broadcast(ctx, rc, data, root=0))
    if op == "all-gather":
        return (yield from all_gather(ctx, rc, pattern(rc.rank, size)))
    if op == "all-reduce":
        return (yield from ring_all_reduce(ctx, rc,
                                           vector(rc.rank, rc.size, size)))
    if op == "all-reduce-rh":
        return (yield from rh_all_reduce(ctx, rc,
                                         vector(rc.rank, rc.size, size)))
    if op == "all-reduce-tree":
        return (yield from tree_all_reduce(ctx, rc,
                                           vector(rc.rank, rc.size, size)))
    if op == "halo":
        return (yield from halo_exchange(ctx, rc,
                                         pattern(rc.rank, 2 * size), size))
    raise BenchmarkError(f"unknown collective op {op!r} "
                         f"(choose from: {', '.join(OPS)})")


def _verify(op: str, nodes: int, size: int, finals: Dict[int, object]) -> bool:
    """Exact host-side check of every rank's final result."""
    if sorted(finals) != list(range(nodes)):
        return False
    if op == "barrier":
        return all(v is None for v in finals.values())
    if op == "broadcast":
        root_data = pattern(0, size)
        return all(finals[r] == root_data for r in range(nodes))
    if op == "all-gather":
        expected = [pattern(k, size) for k in range(nodes)]
        return all(finals[r] == expected for r in range(nodes))
    if op in ("all-reduce", "all-reduce-rh", "all-reduce-tree"):
        vectors = [vector(r, nodes, size) for r in range(nodes)]
        expected = [sum(col) for col in zip(*vectors)]
        # Small integers summed in float64: equality is exact, but the
        # gather order is rank-dependent so allow rounding headroom.
        return all(len(finals[r]) == len(expected) and
                   all(abs(a - b) <= 1e-9 for a, b in
                       zip(finals[r], expected))
                   for r in range(nodes))
    if op == "halo":
        ok = True
        for r in range(nodes):
            left, right = finals[r]
            prev_interior = pattern((r - 1) % nodes, 2 * size)
            next_interior = pattern((r + 1) % nodes, 2 * size)
            ok = ok and left == prev_interior[-size:]
            ok = ok and right == next_interior[:size]
        return ok
    raise BenchmarkError(f"unknown collective op {op!r}")


def run_collective(cluster: Cluster, comm: Communicator, op: str, size: int,
                   iterations: int = 8, warmup: int = 2) -> CollectiveResult:
    """Run one measured collective; see the module docstring for what the
    returned :class:`CollectiveResult` carries."""
    if op not in OPS:
        raise BenchmarkError(f"unknown collective op {op!r} "
                             f"(choose from: {', '.join(OPS)})")
    if iterations < 1 or warmup < 0:
        raise BenchmarkError("need iterations >= 1 and warmup >= 0")
    total = iterations + warmup
    timing = _Timing()
    finals: Dict[int, object] = {}
    steps_seen: Dict[int, int] = {}
    trc = cluster.sim.tracer

    def body(ctx, rc):
        for i in range(1, total + 1):
            if rc.rank == 0 and i == warmup + 1:
                timing.start = ctx.sim.now
            measured = trc.enabled and rc.rank == 0 and i > warmup
            span = (trc.begin("phase", op, track="collective", iter=i)
                    if measured else NULL_SPAN)
            out, steps = yield from _run_one(ctx, rc, op, size)
            span.end()
            finals[rc.rank] = out
            steps_seen[rc.rank] = steps
        if rc.rank == 0:
            timing.end = ctx.sim.now

    handles = comm.launch(body)
    bench = (trc.begin("bench", f"collective:{op}", track="bench",
                       nodes=comm.size, size=size, mode=comm.mode.value,
                       iterations=iterations, warmup=warmup)
             if trc.enabled else NULL_SPAN)
    cluster.sim.run_until_complete(*handles,
                                   limit=cluster.sim.now + 600.0)
    bench.end()
    # A rank body that raised (e.g. a message overflowing its slot)
    # completes its handle as failed without unwinding the simulator —
    # surface it instead of reporting a half-empty measurement.
    for handle in handles:
        if not handle.ok:
            raise BenchmarkError(
                f"collective rank body failed: {handle.value!r}")

    elapsed = timing.end - timing.start
    point = LatencyPoint(size=size, latency=elapsed / iterations)
    msg_bytes = _TOKEN_BYTES if op == "barrier" else size
    if op in FULL_CONNECTIVITY_OPS:
        # Variable message sizes; both schedules move exactly
        # 2*(N-1)*V total bytes per operation (V = the full vector).
        moved = 2 * (comm.size - 1) * comm.size * size * iterations
    else:
        moved = sum(steps_seen.values()) * msg_bytes * iterations
    return CollectiveResult(
        op=op, mode=comm.mode.value, topology=cluster.topology,
        nodes=comm.size, size=size, iterations=iterations, point=point,
        bandwidth=BandwidthPoint(size=size, bytes_moved=moved,
                                 elapsed=elapsed),
        steps=max(steps_seen.values()),
        correct=_verify(op, comm.size, size, finals))


def sweep(ops, node_counts, sizes,
          mode: CollectiveMode = CollectiveMode.POLL_ON_GPU,
          topology: str = "auto", iterations: int = 8, warmup: int = 2):
    """The CLI's scaling sweep: a fresh cluster per (op, N, size) point so
    measurements never share warmed channels.  Yields CollectiveResults."""
    for op in ops:
        for nodes in node_counts:
            for size in sizes:
                cluster, comm = build_communicator(
                    nodes, size, mode, topology,
                    connectivity=op_connectivity(op),
                    max_payload=op_max_payload(op, nodes, size))
                yield run_collective(cluster, comm, op, size,
                                     iterations=iterations, warmup=warmup)


def render_results(results) -> str:
    """A fixed-width table of CollectiveResults."""
    header = ("op".ljust(17) + "mode".ljust(20) + "topo".ljust(8)
              + "N".rjust(3) + "size".rjust(7) + "steps".rjust(7)
              + "latency".rjust(12) + "MB/s".rjust(10) + "  ok")
    lines = [header, "-" * len(header)]
    for r in results:
        lines.append(
            r.op.ljust(17) + r.mode.ljust(20) + r.topology.ljust(8)
            + f"{r.nodes}".rjust(3) + f"{r.size}".rjust(7)
            + f"{r.steps}".rjust(7) + f"{r.latency_us:10.3f}us"
            + f"{r.bandwidth.mb_per_s:10.1f}"
            + ("   OK" if r.correct else "   FAIL"))
    return "\n".join(lines)
