"""Host-CPU timing parameters (Xeon-class core of the paper's testbed)."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..units import NS


@dataclass(frozen=True)
class CpuConfig:
    name: str = "xeon-e5"
    clock_hz: float = 3.0e9
    # Visible latencies of single operations from one core.
    mem_read_latency: float = 75 * NS      # host DRAM (cache-missing read)
    mem_write_latency: float = 15 * NS     # store-buffer drain, amortized
    mmio_write_overhead: float = 70 * NS   # WC buffer / uncached store issue
    mmio_read_overhead: float = 120 * NS   # uncached read issue
    cached_poll_latency: float = 8 * NS    # polling a line that stays in LLC

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ConfigError("clock must be positive")
        for attr in ("mem_read_latency", "mem_write_latency",
                     "mmio_write_overhead", "mmio_read_overhead",
                     "cached_poll_latency"):
            if getattr(self, attr) < 0:
                raise ConfigError(f"{attr} must be non-negative")

    @property
    def instruction_time(self) -> float:
        """One simple ALU instruction (superscalar amortization ignored for
        the control-path code we model)."""
        return 1.0 / self.clock_hz
