"""Host CPU model.

Host-side control code (drivers, the host-controlled and host-assisted
communication paths) runs as coroutine "host threads" driven by a
:class:`HostThread` context, mirroring :class:`repro.gpu.thread.ThreadCtx`
but with CPU timing: cheap cached polls, cheap single-instruction issue, and
uncached MMIO with write-combining cost.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from ..errors import ConfigError
from ..memory import Memory
from ..pcie import PciePort
from ..sim import Process, Simulator
from .config import CpuConfig


class Cpu:
    """The host processor of one node."""

    def __init__(self, sim: Simulator, name: str = "cpu0",
                 config: Optional[CpuConfig] = None) -> None:
        self.sim = sim
        self.name = name
        self.config = config or CpuConfig()
        self._port: Optional[PciePort] = None
        self._host_mem: Optional[Memory] = None
        self.threads_spawned = 0

    def attach(self, root_port: PciePort, host_mem: Memory) -> None:
        self._port = root_port
        self._host_mem = host_mem

    @property
    def port(self) -> PciePort:
        if self._port is None:
            raise ConfigError(f"{self.name} not attached to a fabric")
        return self._port

    @property
    def host_mem(self) -> Memory:
        if self._host_mem is None:
            raise ConfigError(f"{self.name} not attached to host memory")
        return self._host_mem

    def spawn(self, fn: Callable[["HostThread"], Generator], name: str = "") -> Process:
        """Start a host thread running ``fn(ctx)``."""
        self.threads_spawned += 1
        ctx = HostThread(self, track=name or f"{self.name}.t{self.threads_spawned}")
        return self.sim.process(fn(ctx), name=name or f"{self.name}.t{self.threads_spawned}")

    def thread_ctx(self) -> "HostThread":
        return HostThread(self)


class HostThread:
    """Execution context of one host thread."""

    def __init__(self, cpu: Cpu, track: str = "") -> None:
        self.cpu = cpu
        self.sim = cpu.sim
        # Trace track of this host thread: one timeline row per thread.
        self.track = track or cpu.name

    # -- compute ----------------------------------------------------------------
    def compute(self, instructions: int) -> Generator:
        if instructions < 0:
            raise ConfigError(f"negative instruction count {instructions}")
        if instructions:
            yield self.sim.timeout(instructions * self.cpu.config.instruction_time)

    def sleep(self, seconds: float) -> Generator:
        yield self.sim.timeout(seconds)

    # -- memory ------------------------------------------------------------------
    def _is_host(self, addr: int, length: int) -> bool:
        return self.cpu.host_mem.range.contains(addr, length)

    def read(self, addr: int, length: int) -> Generator:
        if self._is_host(addr, length):
            yield self.sim.timeout(self.cpu.config.mem_read_latency)
            return self.cpu.host_mem.read(addr, length)
        yield self.sim.timeout(self.cpu.config.mmio_read_overhead)
        data = yield from self.cpu.port.read(addr, length)
        return data

    def write(self, addr: int, data: bytes) -> Generator:
        if self._is_host(addr, len(data)):
            yield self.sim.timeout(self.cpu.config.mem_write_latency)
            self.cpu.host_mem.write(addr, data)
            return
        # MMIO stores are *posted*: the core pays the write-combining issue
        # cost and moves on while the TLP is in flight.  The fabric's FIFO
        # links keep same-target ordering.
        yield self.sim.timeout(self.cpu.config.mmio_write_overhead)
        self.sim.process(self.cpu.port.write(addr, data),
                         name=f"cpu-posted-store@{addr:#x}")

    def read_u64(self, addr: int) -> Generator:
        data = yield from self.read(addr, 8)
        return int.from_bytes(data, "little")

    def write_u64(self, addr: int, value: int) -> Generator:
        yield from self.write(addr, (value & (2**64 - 1)).to_bytes(8, "little"))

    def read_u32(self, addr: int) -> Generator:
        data = yield from self.read(addr, 4)
        return int.from_bytes(data, "little")

    def write_u32(self, addr: int, value: int) -> Generator:
        yield from self.write(addr, (value & (2**32 - 1)).to_bytes(4, "little"))

    # -- polling -----------------------------------------------------------------
    def spin_until_u64(self, addr: int, predicate: Callable[[int], bool],
                       max_polls: Optional[int] = None,
                       backoff_after: int = 256,
                       backoff_base: float = 0.2e-6,
                       backoff_max: float = 20e-6) -> Generator:
        """Poll a host-memory u64 until ``predicate`` holds.

        Polling a host-memory line is nearly free on the CPU (it stays in the
        LLC until a DMA write invalidates it), which is why CPU-controlled
        completion detection wins in the paper.  Returns (value, polls).
        Long waits back off progressively (PAUSE-loop style) to bound event
        counts on multi-millisecond transfers.
        """
        cached = self._is_host(addr, 8)
        polls = 0
        while True:
            if cached:
                yield self.sim.timeout(self.cpu.config.cached_poll_latency)
                value = self.cpu.host_mem.read_u64(addr)
            else:
                value = yield from self.read_u64(addr)
            polls += 1
            if predicate(value):
                return value, polls
            if max_polls is not None and polls >= max_polls:
                raise ConfigError(f"spin at {addr:#x} exceeded {max_polls} polls")
            if polls > backoff_after:
                over = polls - backoff_after
                delay = min(backoff_base * (2 ** (over // 64)), backoff_max)
                yield self.sim.timeout(delay)
