"""Host CPU model: cores, host threads, timing config."""

from .config import CpuConfig
from .core import Cpu, HostThread

__all__ = ["Cpu", "CpuConfig", "HostThread"]
