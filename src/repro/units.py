"""Physical units and conversion helpers.

The simulator keeps all times as ``float`` **seconds** and all sizes as
``int`` **bytes**.  These constants make call sites read like the paper
("4 us", "256 KiB") instead of raw exponents.
"""

from __future__ import annotations

# --- time ------------------------------------------------------------------
S: float = 1.0
MS: float = 1e-3
US: float = 1e-6
NS: float = 1e-9
PS: float = 1e-12

# --- sizes -----------------------------------------------------------------
BYTE: int = 1
KIB: int = 1024
MIB: int = 1024 * 1024
GIB: int = 1024 * 1024 * 1024

# --- rates -----------------------------------------------------------------
GB_PER_S: float = 1e9  # bytes/second for a "1 GB/s" link (decimal, as vendors quote)
MB_PER_S: float = 1e6


def bytes_per_second(amount: int, seconds: float) -> float:
    """Average rate in bytes/second for ``amount`` bytes over ``seconds``."""
    if seconds <= 0.0:
        raise ValueError(f"non-positive duration: {seconds!r}")
    return amount / seconds


def mb_per_s(amount: int, seconds: float) -> float:
    """Average rate in decimal megabytes/second (the unit used in Fig. 1b/4b)."""
    return bytes_per_second(amount, seconds) / 1e6


def messages_per_second(count: int, seconds: float) -> float:
    """Sustained message rate (the unit used in Fig. 2/5)."""
    if seconds <= 0.0:
        raise ValueError(f"non-positive duration: {seconds!r}")
    return count / seconds


def cycles(n: int, frequency_hz: float) -> float:
    """Duration of ``n`` clock cycles at ``frequency_hz``."""
    if frequency_hz <= 0.0:
        raise ValueError(f"non-positive frequency: {frequency_hz!r}")
    return n / frequency_hz


def format_size(num_bytes: int) -> str:
    """Human-readable size label, matching the paper's axis ticks."""
    if num_bytes >= GIB and num_bytes % GIB == 0:
        return f"{num_bytes // GIB}GiB"
    if num_bytes >= MIB and num_bytes % MIB == 0:
        return f"{num_bytes // MIB}MiB"
    if num_bytes >= KIB and num_bytes % KIB == 0:
        return f"{num_bytes // KIB}KiB"
    return f"{num_bytes}B"


def format_time(seconds: float) -> str:
    """Human-readable duration with an auto-selected unit."""
    if seconds < 0:
        return "-" + format_time(-seconds)
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= MS:
        return f"{seconds / MS:.3f}ms"
    if seconds >= US:
        return f"{seconds / US:.3f}us"
    return f"{seconds / NS:.1f}ns"
