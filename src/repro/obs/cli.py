"""``python -m repro trace`` — run one traced measurement, export the trace.

Runs a ping-pong measurement with a :class:`SpanTracer` installed, writes a
Chrome trace-event JSON (loadable in Perfetto / ``chrome://tracing``), and
prints the per-phase latency breakdown reconciled against the measured
:class:`~repro.core.results.LatencyPoint` — the Fig. 3 attribution, but as
a timeline instead of two aggregate numbers.

Example::

    python -m repro trace --mode dev2dev-direct --size 64 --out trace.json
"""

from __future__ import annotations

import argparse
import sys

from ..cluster import build_extoll_cluster, build_ib_cluster
from ..core.modes import ExtollMode, IbMode
from ..core.pingpong import run_extoll_pingpong, run_ib_pingpong
from ..core.setup import setup_extoll_connection, setup_ib_connection
from ..sim import Simulator
from .export import (
    chrome_trace_events,
    phase_breakdown,
    reconcile_with_point,
    render_breakdown,
    render_timeline,
    validate_chrome_trace,
    write_chrome_trace,
)
from .tracer import SpanTracer

_BUF_BYTES = 64 * 1024


def _mode_for(fabric: str, mode: str):
    enum = ExtollMode if fabric == "extoll" else IbMode
    for m in enum:
        if m.value == mode:
            return m
    valid = ", ".join(m.value for m in enum)
    raise SystemExit(f"unknown {fabric} mode {mode!r} (choose from: {valid})")


def run_traced_pingpong(fabric: str, mode_name: str, size: int,
                        iterations: int, warmup: int,
                        tracer: SpanTracer | None = None):
    """Build a cluster with ``tracer`` installed, run one ping-pong
    measurement, and return ``(tracer, point)``."""
    tracer = tracer or SpanTracer()
    sim = Simulator(tracer=tracer)
    if fabric == "extoll":
        from ..engine import PINGPONG_CONFIGS, run_engine_pingpong

        cluster = build_extoll_cluster(sim=sim)
        conn = setup_extoll_connection(cluster, max(_BUF_BYTES, size))
        if mode_name in PINGPONG_CONFIGS:
            point = run_engine_pingpong(cluster, conn, size,
                                        iterations=iterations, warmup=warmup,
                                        config=PINGPONG_CONFIGS[mode_name])
        else:
            mode = _mode_for(fabric, mode_name)
            point = run_extoll_pingpong(cluster, conn, mode, size,
                                        iterations=iterations, warmup=warmup)
    else:
        mode = _mode_for(fabric, mode_name)
        cluster = build_ib_cluster(sim=sim)
        location = "host" if mode is IbMode.BUF_ON_HOST else "gpu"
        conn = setup_ib_connection(cluster, max(_BUF_BYTES, size), location)
        point = run_ib_pingpong(cluster, conn, mode, size,
                                iterations=iterations, warmup=warmup)
    return tracer, point


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Trace one ping-pong run and export a Chrome trace.")
    parser.add_argument("--fabric", choices=("extoll", "ib"), default="extoll",
                        help="which NIC model to trace (default: extoll)")
    parser.add_argument("--mode", default="dev2dev-direct",
                        help="communication mode, e.g. dev2dev-direct, "
                             "dev2dev-pollOnGPU, dev2dev-assisted, "
                             "dev2dev-hostControlled, dev2dev-engine, "
                             "dev2dev-engineBatched (default: dev2dev-direct)")
    parser.add_argument("--size", type=int, default=64,
                        help="message size in bytes (default: 64)")
    parser.add_argument("--iterations", type=int, default=30,
                        help="measured iterations (default: 30)")
    parser.add_argument("--warmup", type=int, default=3,
                        help="warmup iterations (default: 3)")
    parser.add_argument("--out", default="trace.json",
                        help="Chrome trace output path (default: trace.json)")
    parser.add_argument("--timeline", action="store_true",
                        help="also print the plain-text timeline")
    parser.add_argument("--timeline-limit", type=int, default=80,
                        help="max timeline rows to print (default: 80)")
    parser.add_argument("--categories", default=None,
                        help="comma-separated category filter "
                             "(e.g. phase,pcie,extoll)")
    args = parser.parse_args(argv)

    categories = ([c.strip() for c in args.categories.split(",") if c.strip()]
                  if args.categories else None)
    tracer = SpanTracer(categories=categories)
    tracer, point = run_traced_pingpong(args.fabric, args.mode, args.size,
                                        args.iterations, args.warmup, tracer)

    events = chrome_trace_events(tracer)
    validate_chrome_trace(events)
    write_chrome_trace(tracer, args.out)

    print(f"{args.fabric} {args.mode} size={args.size}B "
          f"iterations={args.iterations}")
    print(f"half-round-trip latency : {point.latency_us:10.3f} us")
    print(f"WR generation (mean)    : {point.post_time * 1e6:10.3f} us")
    print(f"polling (mean)          : {point.poll_time * 1e6:10.3f} us")
    print()
    print(render_breakdown(phase_breakdown(tracer)))
    recon = reconcile_with_point(tracer, point, args.iterations)
    print()
    for phase, r in recon["phases"].items():
        print(f"reconcile {phase:<16}: traced {r['traced'] * 1e6:.3f}us vs "
              f"timing {r['expected'] * 1e6:.3f}us "
              f"(rel err {r['rel_err'] * 100:.3f}%) "
              f"{'OK' if r['ok'] else 'MISMATCH'}")
    print()
    print(f"{len(tracer.spans)} spans, {len(tracer.instants)} instants, "
          f"{len(tracer.tracks())} tracks -> {args.out}")
    if args.timeline:
        print()
        print(render_timeline(tracer, limit=args.timeline_limit))
    return 0 if recon["ok"] else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
