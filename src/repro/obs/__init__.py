"""Observability: hierarchical spans, metrics, and trace exporters.

The instrumentation substrate for every performance claim this repository
makes.  Install a :class:`SpanTracer` on a simulator and a run yields a
complete timeline — WR generation, doorbell, DMA, wire, polling — that can
be exported as Chrome trace-event JSON (:func:`write_chrome_trace`), a text
timeline (:func:`render_timeline`), or a per-phase breakdown table
(:func:`phase_breakdown`) that reconciles against the benchmark drivers'
own ``LatencyPoint`` timings (:func:`reconcile_with_point`).

See ``python -m repro trace --help`` for the CLI.
"""

from ..sim.trace import (
    NULL_METRICS,
    NULL_SPAN,
    NULL_TRACER,
    NullSpan,
    NullTracer,
    get_default_tracer,
    set_default_tracer,
)
from .export import (
    PhaseStat,
    chrome_trace_events,
    phase_breakdown,
    reconcile_with_point,
    render_breakdown,
    render_timeline,
    validate_chrome_trace,
    write_chrome_trace,
)
from .metrics import Counter, Histogram, MetricsRegistry
from .query import (
    clip,
    coverage,
    merge,
    overlap,
    phase_windows,
    span_intervals,
    subtract,
)
from .tracer import FlowRecord, InstantRecord, Span, SpanRecord, SpanTracer

__all__ = [
    "Counter",
    "FlowRecord",
    "Histogram",
    "InstantRecord",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullSpan",
    "NullTracer",
    "PhaseStat",
    "Span",
    "SpanRecord",
    "SpanTracer",
    "chrome_trace_events",
    "clip",
    "coverage",
    "get_default_tracer",
    "merge",
    "overlap",
    "phase_breakdown",
    "phase_windows",
    "reconcile_with_point",
    "render_breakdown",
    "render_timeline",
    "set_default_tracer",
    "span_intervals",
    "subtract",
    "validate_chrome_trace",
    "write_chrome_trace",
]
