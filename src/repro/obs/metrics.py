"""Cheap counters and histograms for the observability layer.

A :class:`MetricsRegistry` hands out named :class:`Counter` and
:class:`Histogram` instances on first use.  Both are deliberately tiny —
``inc``/``observe`` are a handful of attribute updates — so instrumented
hot paths can update them per operation when tracing is on.  When tracing
is off, models hold the shared null registry from :mod:`repro.sim.trace`
and every call is a no-op.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple


class Counter:
    """A monotonically increasing count (TLPs sent, WRs posted, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Histogram:
    """Summary statistics of an observed value (latencies, sizes, polls).

    Tracks count/sum/min/max plus power-of-two buckets, which is enough to
    render a distribution without keeping every sample.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        # buckets[e] counts samples with 2**(e-1) < value <= 2**e; e may be
        # negative (sub-second latencies land well below 2**0).
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value > 0:
            mantissa, exp = math.frexp(value)   # value = mantissa * 2**exp
            if mantissa == 0.5:                 # exact power of two: lower bucket
                exp -= 1
        else:
            exp = 0
        self.buckets[exp] = self.buckets.get(exp, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-th percentile (0..100) from the power-of-two
        buckets.

        THE percentile implementation — every consumer (metric summaries,
        the bench harness, the telemetry SLO monitors) goes through this
        method, including over *windowed* sample sets via :meth:`delta`.

        The rank is located by walking the cumulative bucket counts; within
        the bucket it lands in, the value is interpolated linearly across the
        bucket's ``(2**(e-1), 2**e]`` range and clamped to the observed
        ``[min, max]``.  The estimate is therefore never off by more than one
        octave.  Edge cases are exact: an empty histogram returns ``None``,
        a single sample returns that sample for every ``q``, ``q=0`` returns
        the minimum and ``q=100`` the maximum.
        """
        if not self.count:
            return None
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile wants q in [0, 100], got {q!r}")
        if q == 0.0 or self.count == 1:
            return self.min
        if q == 100.0:
            return self.max
        target = q / 100.0 * self.count
        cumulative = 0
        for e in sorted(self.buckets):
            n = self.buckets[e]
            if not n:
                continue  # delta histograms may carry zero-count buckets
            cumulative += n
            if cumulative >= target:
                lo, hi = 2.0 ** (e - 1), 2.0 ** e
                frac = (target - (cumulative - n)) / n
                est = lo + (hi - lo) * frac
                return min(max(est, self.min), self.max)
        return self.max  # pragma: no cover - cumulative == count above

    # -- windowed views ----------------------------------------------------------
    def state(self) -> dict:
        """A cheap structural snapshot (count/sum/min/max plus a copy of the
        buckets).  Two states bound a *window*: feed them to :meth:`delta`
        to get a histogram of only the samples observed in between — how the
        telemetry sampler turns one live histogram into per-window tail
        latencies without retaining samples."""
        return {"count": self.count, "sum": self.total, "min": self.min,
                "max": self.max, "buckets": dict(self.buckets)}

    @classmethod
    def delta(cls, name: str, current: dict, earlier: Optional[dict] = None,
              ) -> "Histogram":
        """The histogram of samples observed between two :meth:`state`
        snapshots (``earlier`` omitted: since creation).

        min/max of the in-between samples are not tracked exactly (the live
        histogram only keeps all-time extremes), so they are estimated from
        the occupied delta buckets' bounds, clamped to the live extremes —
        consistent with the one-octave accuracy of :meth:`percentile`.
        """
        earlier = earlier or {"count": 0, "sum": 0.0, "buckets": {}}
        out = cls(name)
        prev_buckets = earlier.get("buckets") or {}
        for e, n in current.get("buckets", {}).items():
            d = n - prev_buckets.get(e, 0)
            if d > 0:
                out.buckets[e] = d
        out.count = current["count"] - earlier.get("count", 0)
        out.total = current["sum"] - earlier.get("sum", 0.0)
        if out.count < 0 or any(n < 0 for n in out.buckets.values()):
            raise ValueError(
                f"histogram {name!r}: 'earlier' state is not a prefix of "
                f"'current' (was the histogram cleared in between?)")
        if out.buckets:
            exps = sorted(out.buckets)
            lo = 2.0 ** (exps[0] - 1)
            hi = 2.0 ** exps[-1]
            out.min = max(lo, current.get("min", lo))
            out.max = min(hi, current.get("max", hi))
            if out.min > out.max:  # single-octave window: bounds collapse
                out.min = out.max
        return out

    def summary(self) -> dict:
        """JSON-safe summary: an empty histogram reports ``None`` for
        min/max/mean/percentiles instead of leaking ``inf``/``-inf``."""
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": None, "max": None,
                    "mean": None, "p50": None, "p90": None, "p99": None}
        return {"count": self.count, "sum": self.total,
                "min": self.min, "max": self.max, "mean": self.mean,
                "p50": self.percentile(50), "p90": self.percentile(90),
                "p99": self.percentile(99)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.count:
            return f"<Histogram {self.name} n=0>"
        return (f"<Histogram {self.name} n={self.count} mean={self.mean:g} "
                f"min={self.min:g} max={self.max:g}>")


class Timeline:
    """A stepwise state variable sampled at transition times (link up/down,
    queue depth, ...).  Stores ``(time, value)`` points; the value holds
    until the next point, which is what the timeline exporter needs to draw
    fault windows."""

    __slots__ = ("name", "points")

    def __init__(self, name: str) -> None:
        self.name = name
        self.points: List[Tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        self.points.append((time, value))

    @property
    def transitions(self) -> int:
        return len(self.points)

    def value_at(self, time: float) -> Optional[float]:
        """The state at ``time`` (last point at or before it), or None."""
        current = None
        for t, v in self.points:
            if t > time:
                break
            current = v
        return current

    def windows(self, value: float) -> List[Tuple[float, Optional[float]]]:
        """The ``(start, end)`` intervals during which the state equaled
        ``value``; an open interval ends with ``None``."""
        out: List[Tuple[float, Optional[float]]] = []
        start: Optional[float] = None
        for t, v in self.points:
            if v == value and start is None:
                start = t
            elif v != value and start is not None:
                out.append((start, t))
                start = None
        if start is not None:
            out.append((start, None))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Timeline {self.name} points={len(self.points)}>"


class MetricsRegistry:
    """Named counters, histograms, and timelines, created on first access."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._timelines: Dict[str, Timeline] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name)
        return h

    def timeline(self, name: str) -> Timeline:
        t = self._timelines.get(name)
        if t is None:
            t = self._timelines[name] = Timeline(name)
        return t

    def counter_values(self) -> Dict[str, int]:
        """Flat ``{name: value}`` view of the counters only — the shape the
        telemetry sampler polls per tick (histogram/timeline summaries are
        too heavy to rebuild at sampling cadence)."""
        return {name: c.value for name, c in self._counters.items()}

    def histograms(self) -> Dict[str, Histogram]:
        """The live histogram objects by name (read-only use expected)."""
        return dict(self._histograms)

    def snapshot(self) -> dict:
        """A plain-dict view (counters as ints, histograms as summaries with
        estimated percentiles, timelines as their transition points).  The
        result is JSON-safe: empty histograms report ``None``, never
        ``inf``/``-inf``."""
        out: dict = {}
        for name, c in sorted(self._counters.items()):
            out[name] = c.value
        for name, h in sorted(self._histograms.items()):
            out[name] = h.summary()
        for name, t in sorted(self._timelines.items()):
            out[name] = {"points": [[time, value] for time, value in t.points]}
        return out

    def diff(self, earlier: dict) -> dict:
        """What changed since ``earlier`` (a prior :meth:`snapshot`).

        Returns the same flat shape as :meth:`snapshot` but with *deltas*:
        counters as ``current - earlier``, histograms as the count/sum/mean
        of the samples observed in between, timelines as the points appended
        since.  This is how the bench harness computes per-run counter
        deltas on registries shared across sequential simulations, without
        resetting them mid-flight.  Metrics created after ``earlier`` diff
        against zero.
        """
        out: dict = {}
        for name, c in sorted(self._counters.items()):
            before = earlier.get(name, 0)
            out[name] = c.value - (before if isinstance(before, int) else 0)
        for name, h in sorted(self._histograms.items()):
            before = earlier.get(name)
            before = before if isinstance(before, dict) else {}
            d_count = h.count - (before.get("count") or 0)
            d_sum = h.total - (before.get("sum") or 0.0)
            out[name] = {"count": d_count, "sum": d_sum,
                         "mean": d_sum / d_count if d_count else None}
        for name, t in sorted(self._timelines.items()):
            before = earlier.get(name)
            before = before if isinstance(before, dict) else {}
            seen = len(before.get("points") or [])
            out[name] = {"points": [[time, value]
                                    for time, value in t.points[seen:]]}
        return out

    def clear(self) -> None:
        self._counters.clear()
        self._histograms.clear()
        self._timelines.clear()

    def render(self) -> str:
        """Text table of every metric, alphabetical."""
        rows: List[Tuple[str, str]] = []
        for name, c in sorted(self._counters.items()):
            rows.append((name, f"{c.value:,}"))
        for name, h in sorted(self._histograms.items()):
            if h.count:
                rows.append((name, f"n={h.count:,} mean={h.mean:.4g} "
                                   f"min={h.min:.4g} max={h.max:.4g} "
                                   f"p99={h.percentile(99):.4g}"))
            else:
                rows.append((name, "n=0"))
        for name, t in sorted(self._timelines.items()):
            last = f" last={t.points[-1][1]:g}" if t.points else ""
            rows.append((name, f"transitions={t.transitions:,}{last}"))
        if not rows:
            return "(no metrics recorded)"
        width = max(len(name) for name, _ in rows) + 2
        return "\n".join(name.ljust(width) + value for name, value in rows)
