"""The hierarchical span tracer — the heart of the observability layer.

A :class:`SpanTracer` records three kinds of evidence:

* **spans** — ``begin``/``end`` pairs with a track (timeline row), parent
  links (per-track stacks; execution within one track is sequential), and
  key/value attributes,
* **instants** — point events on a track,
* **metrics** — counters/histograms in a :class:`~repro.obs.metrics.MetricsRegistry`.

Install one on a simulator (``sim.set_tracer(tracer)``) or, for code paths
that build simulators internally, as the process-wide default
(:func:`repro.sim.trace.set_default_tracer`).  A tracer survives being
bound to several simulators in sequence: each re-bind rebases its clock so
the global timeline stays monotonic, which is what lets ``--trace`` on the
report entry point collect every figure's runs into one file.

Instrumented model code follows one pattern::

    trc = self.sim.tracer
    span = trc.begin("pcie", "MWr", track=link_name, bytes=n) if trc.enabled \\
        else NULL_SPAN
    ...timed work...
    span.end()

so the untraced path costs one attribute read and a branch.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, TYPE_CHECKING

from ..sim.trace import NULL_SPAN, TraceRecord, Tracer
from .metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.engine import Simulator


@dataclass(frozen=True)
class SpanRecord:
    """One completed span."""

    span_id: int
    parent_id: Optional[int]
    category: str
    name: str
    track: str
    begin: float
    end: float
    depth: int
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.begin

    def __str__(self) -> str:
        attrs = "".join(f" {k}={v}" for k, v in self.attrs.items())
        return (f"[{self.begin * 1e6:12.3f}us +{self.duration * 1e6:10.3f}us] "
                f"{self.track:<22} {'  ' * self.depth}{self.category}/{self.name}"
                f"{attrs}")


@dataclass(frozen=True)
class FlowRecord:
    """One causal flow event (see :mod:`repro.causal`).

    ``seq`` is a global emission index: two events at the same simulated
    time are ordered by emission, which is exactly the simulator's
    deterministic execution order — the DAG builder uses ``(time, seq)``
    as its happens-before tiebreak.  ``addr`` is the message's address key
    ``(dst_node, dst_nla)`` (or ``None`` for purely local events); both
    endpoints compute it independently from shared protocol state, so no
    descriptor or wire format carries any tracing payload.
    """

    seq: int
    time: float
    kind: str
    actor: str
    addr: Optional[tuple] = None
    attrs: dict = field(default_factory=dict)

    def __str__(self) -> str:
        attrs = "".join(f" {k}={v}" for k, v in self.attrs.items())
        addr = f" @{self.addr}" if self.addr is not None else ""
        return (f"[{self.time * 1e6:12.3f}us             ] "
                f"{self.actor:<22} ~{self.kind}{addr}{attrs}")


@dataclass(frozen=True)
class InstantRecord:
    """One point event."""

    category: str
    name: str
    track: str
    time: float
    attrs: dict = field(default_factory=dict)

    def __str__(self) -> str:
        attrs = "".join(f" {k}={v}" for k, v in self.attrs.items())
        return (f"[{self.time * 1e6:12.3f}us             ] "
                f"{self.track:<22} *{self.category}/{self.name}{attrs}")


class Span:
    """A live (not yet ended) span handle."""

    __slots__ = ("tracer", "span_id", "parent_id", "category", "name",
                 "track", "begin", "depth", "attrs", "epoch")

    def __init__(self, tracer: "SpanTracer", span_id: int,
                 parent_id: Optional[int], category: str, name: str,
                 track: str, begin: float, depth: int, attrs: dict) -> None:
        self.tracer = tracer
        self.span_id = span_id
        self.epoch = tracer._epoch
        self.parent_id = parent_id
        self.category = category
        self.name = name
        self.track = track
        self.begin = begin
        self.depth = depth
        self.attrs = attrs

    def set(self, **attrs) -> None:
        """Attach attributes while the span is still open."""
        self.attrs.update(attrs)

    def end(self, **attrs) -> None:
        if attrs:
            self.attrs.update(attrs)
        self.tracer._end_span(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None:
            self.attrs.setdefault("error", repr(exc))
        self.end()


class SpanTracer(Tracer):
    """Hierarchical tracer: spans + instants + metrics + flat records.

    ``max_spans`` bounds memory on long runs: once reached, further spans
    and instants are counted in ``dropped`` instead of stored (the run
    itself is unaffected).
    """

    def __init__(self, sim: Optional["Simulator"] = None,
                 categories: Optional[Iterable[str]] = None,
                 sink: Optional[Callable[[TraceRecord], None]] = None,
                 min_time: Optional[float] = None,
                 max_time: Optional[float] = None,
                 max_spans: Optional[int] = None) -> None:
        super().__init__(sim, categories, sink, min_time, max_time)
        self.metrics = MetricsRegistry()
        self.spans: List[SpanRecord] = []
        self.instants: List[InstantRecord] = []
        self.flows: List[FlowRecord] = []
        self.max_spans = max_spans
        self.dropped = 0
        self._stacks: Dict[str, List[Span]] = {}
        self._ids = itertools.count(1)
        self._flow_ids = itertools.count(0)
        self._offset = 0.0
        self._latest = 0.0
        self._epoch = 0

    # -- clock -----------------------------------------------------------------
    def now(self) -> float:
        t = self._offset + (self.sim.now if self.sim is not None else 0.0)
        if t > self._latest:
            self._latest = t
        return t

    def bind(self, sim: "Simulator") -> None:
        """Adopt a (possibly new) simulator.  Re-binding to a different
        simulator rebases the clock past everything recorded so far, keeping
        one monotonic timeline across sequential runs."""
        if sim is self.sim:
            return
        if self.sim is not None:
            self._offset = self._latest
            # Spans begun under the previous simulator can no longer end
            # meaningfully: their processes are dead, and the only way their
            # ``end`` still fires is a ``finally`` run by generator
            # collection at an arbitrary later wall-clock point, which would
            # stamp them with the *new* simulator's time and corrupt the
            # timeline.  Bumping the epoch makes those late ends no-ops.
            self._epoch += 1
            self._stacks.clear()
        self.sim = sim

    # -- spans -----------------------------------------------------------------
    def begin(self, category: str, name: str, track: str = "main",
              **attrs) -> Span:
        if not self._passes_category(category):
            return NULL_SPAN  # children re-parent to the grandparent
        stack = self._stacks.get(track)
        if stack is None:
            stack = self._stacks[track] = []
        parent_id = stack[-1].span_id if stack else None
        span = Span(self, next(self._ids), parent_id, category, name, track,
                    self.now(), len(stack), attrs)
        stack.append(span)
        return span

    def _end_span(self, span: Span) -> None:
        if span.epoch != self._epoch:
            return  # stale span from a previous simulator binding
        stack = self._stacks.get(span.track)
        if stack is not None:
            # Normally a plain pop; tolerate out-of-order ends from
            # overlapping processes that (incorrectly) share a track.
            for i in range(len(stack) - 1, -1, -1):
                if stack[i] is span:
                    del stack[i]
                    break
        end = self.now()
        if self.min_time is not None and end < self.min_time:
            return
        if self.max_time is not None and span.begin > self.max_time:
            return
        if self.max_spans is not None and len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        record = SpanRecord(span.span_id, span.parent_id, span.category,
                            span.name, span.track, span.begin, end,
                            span.depth, span.attrs)
        self.spans.append(record)
        if self._sink is not None:
            self._sink(record)

    def instant(self, category: str, name: str, track: str = "main",
                **attrs) -> None:
        if not self._passes_category(category):
            return
        time = self.now()
        if not self._passes_window(time):
            return
        if self.max_spans is not None and len(self.instants) >= self.max_spans:
            self.dropped += 1
            return
        record = InstantRecord(category, name, track, time, attrs)
        self.instants.append(record)
        if self._sink is not None:
            self._sink(record)

    # -- causal flow events ------------------------------------------------------
    def flow_event(self, kind: str, actor: str, addr=None, **attrs) -> None:
        if not self._passes_category("causal"):
            return
        time = self.now()
        if not self._passes_window(time):
            return
        if self.max_spans is not None and len(self.flows) >= self.max_spans:
            self.dropped += 1
            return
        record = FlowRecord(next(self._flow_ids), time, kind, actor, addr,
                            attrs)
        self.flows.append(record)
        if self._sink is not None:
            self._sink(record)

    # -- introspection -----------------------------------------------------------
    def open_spans(self) -> List[Span]:
        """Spans begun but not yet ended (useful to catch leaks in tests)."""
        return [s for stack in self._stacks.values() for s in stack]

    def tracks(self) -> List[str]:
        seen = {s.track for s in self.spans} | {i.track for i in self.instants}
        return sorted(seen)

    def spans_named(self, name: str) -> List[SpanRecord]:
        return [s for s in self.spans if s.name == name]

    def spans_in(self, category: str) -> List[SpanRecord]:
        return [s for s in self.spans if s.category == category]

    def children_of(self, span: SpanRecord) -> List[SpanRecord]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def clear(self) -> None:
        super().clear()
        self.spans.clear()
        self.instants.clear()
        self.flows.clear()
        self._stacks.clear()
        self.metrics.clear()
        self.dropped = 0
