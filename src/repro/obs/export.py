"""Exporters: Chrome trace-event JSON, text timeline, phase breakdown.

* :func:`chrome_trace_events` / :func:`write_chrome_trace` — the Chrome
  trace-event format (``chrome://tracing`` / Perfetto): ``B``/``E`` pairs
  per span, ``i`` instants, thread-name metadata per track.
* :func:`render_timeline` — a plain-text timeline (spans indented by depth).
* :func:`phase_breakdown` / :func:`render_breakdown` — per-phase duration
  sums, the table that reconciles against
  :class:`~repro.core.results.LatencyPoint` (Fig. 3's quantity).
* :func:`validate_chrome_trace` — structural check (pairing, nesting,
  monotonic timestamps) used by tests and the trace CLI.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from typing import IO, Dict, List, Optional, Union

from .tracer import SpanTracer

_US = 1e6  # trace-event timestamps are microseconds


def _ts(seconds: float) -> float:
    return seconds * _US


def _natural(track: str) -> tuple:
    """Sort key that orders embedded numbers numerically, so per-rank
    tracks come out ``n0, n1, ..., n9, n10`` in Perfetto instead of the
    lexical ``n0, n1, n10, n2``."""
    return tuple(int(part) if part.isdigit() else part
                 for part in re.split(r"(\d+)", track))


def track_tids(tracer: SpanTracer) -> Dict[str, int]:
    """track -> tid, numbered in natural order (Perfetto sorts rows by
    tid).  Includes flow-event actors so arrows land on named rows."""
    tracks = set(tracer.tracks()) | {f.actor for f in tracer.flows}
    return {track: i + 1
            for i, track in enumerate(sorted(tracks, key=_natural))}


def chrome_trace_events(tracer: SpanTracer, pid: int = 0) -> List[dict]:
    """Flatten a tracer into a sorted trace-event list.

    Events on one ``tid`` are strictly nested: at equal timestamps, ``E``
    events close inner spans before outer ones and ``B`` events open outer
    spans before inner ones, so loaders never see a crossing.

    Causal flow events are emitted as Chrome flow arrows: per message
    address wave, ``s`` at the first hop, ``t`` steps in between, ``f`` at
    the last — one arrow id per (addr, wave).
    """
    tids = track_tids(tracer)
    events: List[dict] = []
    for track, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        events.append({"ph": "M", "name": "thread_name", "pid": pid,
                       "tid": tid, "args": {"name": track}})
    timed: List[tuple] = []
    for span in tracer.spans:
        tid = tids[span.track]
        args = {"category": span.category, **span.attrs}
        # Sort key: (ts, E-before-B, outer-B-first / inner-E-first, seq).
        # Zero-duration spans keep their E *immediately after* their own B
        # (same rank/depth, higher seq) instead of the usual E-first rank,
        # which would orphan the pair.
        b_key = (_ts(span.begin), 1, span.depth, span.span_id, 0)
        if span.end > span.begin:
            e_key = (_ts(span.end), 0, -span.depth, span.span_id, 0)
        else:
            e_key = (_ts(span.begin), 1, span.depth, span.span_id, 1)
        timed.append((b_key,
                      {"ph": "B", "name": span.name, "cat": span.category,
                       "ts": _ts(span.begin), "pid": pid, "tid": tid,
                       "args": args}))
        timed.append((e_key,
                      {"ph": "E", "name": span.name, "cat": span.category,
                       "ts": _ts(span.end), "pid": pid, "tid": tid}))
    for inst in tracer.instants:
        timed.append(((_ts(inst.time), 2, 0, 0, 0),
                      {"ph": "i", "name": inst.name, "cat": inst.category,
                       "ts": _ts(inst.time), "pid": pid, "tid": tids[inst.track],
                       "s": "t", "args": dict(inst.attrs)}))
    # Flow arrows: group the causal events of one message (same address,
    # same reuse wave) under one flow id, start-to-finish in hop order.
    waves: Dict[tuple, List] = {}
    wave_count: Dict[tuple, int] = {}
    for flow in tracer.flows:
        if flow.addr is None:
            continue
        key = (flow.addr, flow.kind)
        wave = wave_count.get(key, 0)
        wave_count[key] = wave + 1
        waves.setdefault((flow.addr, wave), []).append(flow)
    for flow_id, (key, hops) in enumerate(sorted(waves.items(),
                                                 key=lambda kv: kv[1][0].seq)):
        if len(hops) < 2:
            continue
        for pos, flow in enumerate(hops):
            ph = "s" if pos == 0 else ("f" if pos == len(hops) - 1 else "t")
            ev = {"ph": ph, "name": f"~{flow.kind}", "cat": "causal",
                  "id": flow_id, "ts": _ts(flow.time), "pid": pid,
                  "tid": tids[flow.actor],
                  "args": {"kind": flow.kind, **flow.attrs}}
            if ph == "f":
                ev["bp"] = "e"  # bind to the enclosing slice, arrow at ts
            timed.append(((_ts(flow.time), 2, 0, 0, flow.seq), ev))
    timed.sort(key=lambda kv: kv[0])
    events.extend(ev for _key, ev in timed)
    return events


def write_chrome_trace(tracer: SpanTracer, out: Union[str, IO[str]],
                       pid: int = 0) -> dict:
    """Serialize to a ``chrome://tracing``-loadable JSON file (or stream).
    Returns the document that was written."""
    doc = {
        "traceEvents": chrome_trace_events(tracer, pid),
        "displayTimeUnit": "ns",
        "otherData": {
            "generator": "repro.obs",
            "metrics": tracer.metrics.snapshot(),
            "dropped": tracer.dropped,
        },
    }
    if isinstance(out, str):
        # --trace/--out may point into a directory that doesn't exist yet
        # (e.g. artifacts/run1/trace.json on a fresh checkout).
        parent = os.path.dirname(out)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1)
    else:
        json.dump(doc, out, indent=1)
    return doc


def validate_chrome_trace(events: List[dict]) -> None:
    """Raise ``ValueError`` unless every ``B`` has a matching ``E`` on the
    same tid with LIFO nesting and non-decreasing timestamps."""
    last_ts: Dict[int, float] = {}
    stacks: Dict[int, List[dict]] = {}
    for ev in events:
        ph = ev["ph"]
        if ph == "M":
            continue
        tid = ev["tid"]
        ts = ev["ts"]
        if ts < last_ts.get(tid, float("-inf")):
            raise ValueError(f"timestamps went backwards on tid {tid}: "
                             f"{ts} after {last_ts[tid]}")
        last_ts[tid] = ts
        if ph == "B":
            stacks.setdefault(tid, []).append(ev)
        elif ph == "E":
            stack = stacks.get(tid)
            if not stack:
                raise ValueError(f"E without B on tid {tid}: {ev}")
            opener = stack.pop()
            if opener["name"] != ev["name"]:
                raise ValueError(
                    f"mispaired span on tid {tid}: B={opener['name']!r} "
                    f"closed by E={ev['name']!r}")
        elif ph in ("s", "t", "f"):
            if "id" not in ev:
                raise ValueError(f"flow event without id on tid {tid}: {ev}")
        elif ph != "i":
            raise ValueError(f"unexpected event phase {ph!r}")
    leftovers = [ev["name"] for stack in stacks.values() for ev in stack]
    if leftovers:
        raise ValueError(f"unclosed spans: {leftovers}")


def render_timeline(tracer: SpanTracer,
                    limit: Optional[int] = None) -> str:
    """Plain-text timeline: spans and instants interleaved by begin time."""
    rows = sorted(list(tracer.spans) + list(tracer.instants),
                  key=lambda r: (getattr(r, "begin", None) or
                                 getattr(r, "time", 0.0)))
    if limit is not None:
        rows = rows[:limit]
    lines = [str(r) for r in rows]
    if not lines:
        return "(empty trace)"
    return "\n".join(lines)


@dataclass
class PhaseStat:
    """Aggregate of every span sharing one name within a category."""

    name: str
    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def add(self, duration: float) -> None:
        self.count += 1
        self.total += duration
        if duration < self.min:
            self.min = duration
        if duration > self.max:
            self.max = duration


def phase_breakdown(tracer: SpanTracer,
                    category: str = "phase") -> Dict[str, PhaseStat]:
    """Sum span durations by name within ``category`` (default: the
    benchmark-driver ``phase`` spans — WR generation, polling, ...)."""
    out: Dict[str, PhaseStat] = {}
    for span in tracer.spans:
        if span.category != category:
            continue
        stat = out.get(span.name)
        if stat is None:
            stat = out[span.name] = PhaseStat(span.name)
        stat.add(span.duration)
    return out


def render_breakdown(breakdown: Dict[str, PhaseStat],
                     title: str = "Per-phase latency breakdown") -> str:
    lines = [title, "=" * len(title)]
    lines.append("phase".ljust(24) + "count".rjust(8) + "total".rjust(14)
                 + "mean".rjust(12) + "min".rjust(12) + "max".rjust(12))
    for name in sorted(breakdown):
        s = breakdown[name]
        lines.append(name.ljust(24) + f"{s.count}".rjust(8)
                     + f"{s.total * _US:.3f}us".rjust(14)
                     + f"{s.mean * _US:.3f}us".rjust(12)
                     + f"{s.min * _US:.3f}us".rjust(12)
                     + f"{s.max * _US:.3f}us".rjust(12))
    if len(lines) == 3:
        lines.append("(no phase spans recorded)")
    return "\n".join(lines)


def reconcile_with_point(tracer: SpanTracer, point, iterations: int,
                         tolerance: float = 0.01) -> dict:
    """Check the tentpole invariant: summed ``wr-generation`` / ``polling``
    phase-span durations must match ``LatencyPoint.post_time`` /
    ``poll_time`` (which are per-iteration averages) within ``tolerance``.

    Returns a dict with both sides and relative errors; ``ok`` is True when
    every phase present reconciles.
    """
    breakdown = phase_breakdown(tracer)
    result: dict = {"iterations": iterations, "phases": {}, "ok": True}
    for phase, expected_total in (("wr-generation", point.post_time * iterations),
                                  ("polling", point.poll_time * iterations)):
        stat = breakdown.get(phase)
        traced = stat.total if stat else 0.0
        if expected_total > 0:
            rel_err = abs(traced - expected_total) / expected_total
        else:
            rel_err = 0.0 if traced == 0.0 else float("inf")
        ok = rel_err <= tolerance
        result["phases"][phase] = {"traced": traced,
                                   "expected": expected_total,
                                   "rel_err": rel_err, "ok": ok}
        result["ok"] = result["ok"] and ok
    return result
