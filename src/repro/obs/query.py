"""Span query helpers: interval algebra over a :class:`SpanTracer`.

The cost-attribution profiler (:mod:`repro.perf.profiler`) needs to answer
questions like "how much of the polling window was covered by wire
activity?".  Those are interval-set operations on span ``(begin, end)``
pairs, collected here so analyses and tests share one implementation:

* :func:`span_intervals` — select spans and return their intervals,
* :func:`merge` — union overlapping intervals into a disjoint sorted list,
* :func:`clip` — restrict intervals to one window,
* :func:`subtract` — remove covered time from a set of windows,
* :func:`coverage` — total seconds in a disjoint interval list.

All functions treat intervals as half-open ``[begin, end)`` pairs of
simulated seconds; zero-length intervals contribute nothing.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from .tracer import SpanRecord, SpanTracer

Interval = Tuple[float, float]


def span_intervals(tracer: SpanTracer,
                   category: Optional[str] = None,
                   name: Optional[str] = None,
                   track: Optional[str] = None,
                   predicate: Optional[Callable[[SpanRecord], bool]] = None,
                   ) -> List[Interval]:
    """The ``(begin, end)`` pairs of every span matching the filters.

    ``category``/``name``/``track`` match exactly when given; ``predicate``
    is an arbitrary extra filter.  The result is sorted by begin time but
    NOT merged — feed it to :func:`merge` before set arithmetic.
    """
    out = []
    for s in tracer.spans:
        if category is not None and s.category != category:
            continue
        if name is not None and s.name != name:
            continue
        if track is not None and s.track != track:
            continue
        if predicate is not None and not predicate(s):
            continue
        out.append((s.begin, s.end))
    out.sort()
    return out


def merge(intervals: Sequence[Interval]) -> List[Interval]:
    """Union: overlapping or touching intervals collapse into one; the
    result is sorted and disjoint."""
    out: List[Interval] = []
    for begin, end in sorted(intervals):
        if end <= begin:
            continue
        if out and begin <= out[-1][1]:
            if end > out[-1][1]:
                out[-1] = (out[-1][0], end)
        else:
            out.append((begin, end))
    return out


def clip(intervals: Sequence[Interval], window: Interval) -> List[Interval]:
    """The parts of ``intervals`` that fall inside ``window``."""
    w_begin, w_end = window
    out = []
    for begin, end in intervals:
        begin, end = max(begin, w_begin), min(end, w_end)
        if end > begin:
            out.append((begin, end))
    return out


def subtract(windows: Sequence[Interval],
             cover: Sequence[Interval]) -> List[Interval]:
    """``windows`` minus ``cover``: the time in ``windows`` not covered.

    Both arguments must be sorted and disjoint (i.e. outputs of
    :func:`merge`); the result is too.
    """
    out: List[Interval] = []
    for begin, end in windows:
        cursor = begin
        for c_begin, c_end in cover:
            if c_end <= cursor:
                continue
            if c_begin >= end:
                break
            if c_begin > cursor:
                out.append((cursor, c_begin))
            cursor = max(cursor, c_end)
            if cursor >= end:
                break
        if cursor < end:
            out.append((cursor, end))
    return out


def coverage(intervals: Sequence[Interval]) -> float:
    """Total seconds in a disjoint interval list."""
    return sum(end - begin for begin, end in intervals)


def overlap(intervals: Sequence[Interval], windows: Sequence[Interval],
            ) -> List[Interval]:
    """Merged intersection of ``intervals`` with a set of windows."""
    out: List[Interval] = []
    for window in windows:
        out.extend(clip(intervals, window))
    return merge(out)


def phase_windows(tracer: SpanTracer, name: str,
                  category: str = "phase") -> List[Interval]:
    """The merged windows of the driver-level phase spans named ``name`` —
    the exact partition of a benchmark's measured region."""
    return merge(span_intervals(tracer, category=category, name=name))
