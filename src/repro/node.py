"""A compute node: host CPU + host DRAM + GPU + PCIe fabric + (optionally) a
NIC — one box of the paper's testbed.

Host memory is split into a *user* region and a *kernel* region; EXTOLL's
notification queues and InfiniBand's driver structures live in the kernel
region, exactly where the paper locates them (§III-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .cpu import Cpu, CpuConfig
from .errors import ConfigError
from .gpu import Gpu, GpuConfig
from .memory import (
    HOST_DRAM_BASE,
    MMIO_BASE,
    AddressMap,
    AddressRange,
    Allocator,
    Memory,
    MemorySpace,
)
from .network import Endpoint
from .pcie import FabricConfig, PcieFabric, PcieLinkConfig
from .sim import Simulator
from .units import MIB


@dataclass(frozen=True)
class NodeConfig:
    host_mem_bytes: int = 128 * MIB
    kernel_mem_bytes: int = 16 * MIB
    gpu: GpuConfig = field(default_factory=GpuConfig)
    cpu: CpuConfig = field(default_factory=CpuConfig)
    pcie: FabricConfig = field(default_factory=FabricConfig)
    gpu_link: PcieLinkConfig = field(default_factory=PcieLinkConfig)

    def __post_init__(self) -> None:
        if self.kernel_mem_bytes >= self.host_mem_bytes:
            raise ConfigError("kernel region must be smaller than host memory")


class Node:
    """One node of the testbed."""

    def __init__(self, sim: Simulator, node_id: int,
                 config: Optional[NodeConfig] = None) -> None:
        self.sim = sim
        self.node_id = node_id
        self.config = config or NodeConfig()

        self.address_map = AddressMap()
        self.host_mem = Memory(f"n{node_id}.host", HOST_DRAM_BASE,
                               self.config.host_mem_bytes, MemorySpace.HOST_DRAM)
        self.address_map.add(self.host_mem)

        user_bytes = self.config.host_mem_bytes - self.config.kernel_mem_bytes
        self.user_alloc = Allocator(
            self.host_mem, region=AddressRange(HOST_DRAM_BASE, user_bytes))
        self.kernel_alloc = Allocator(
            self.host_mem,
            region=AddressRange(HOST_DRAM_BASE + user_bytes,
                                self.config.kernel_mem_bytes))

        self.pcie = PcieFabric(sim, self.address_map, self.config.pcie)
        self.pcie.claim(self.pcie.root, self.host_mem)

        self.cpu = Cpu(sim, f"n{node_id}.cpu", self.config.cpu)
        self.cpu.attach(self.pcie.root, self.host_mem)

        self.gpu = Gpu(sim, f"n{node_id}.gpu", self.config.gpu)
        gpu_port = self.pcie.attach(self.gpu.name, self.config.gpu_link)
        self.gpu.attach_port(gpu_port)

        self.nic = None  # set by attach_extoll / attach_ib

    # -- NIC installation -------------------------------------------------------
    def attach_extoll(self, endpoint: Endpoint, config=None,
                      link_config: Optional[PcieLinkConfig] = None):
        """Install an EXTOLL card (driver load: BAR mapped, RMA unit running,
        kernel-space notification storage reserved)."""
        from .extoll import ExtollNic

        if self.nic is not None:
            raise ConfigError(f"node {self.node_id} already has a NIC")
        nic = ExtollNic(self.sim, self.node_id, config=config)
        nic.attach(self.pcie, MMIO_BASE, self.kernel_alloc, endpoint,
                   link_config)
        self.nic = nic
        return nic

    def attach_ib(self, endpoint: Endpoint, config=None,
                  link_config: Optional[PcieLinkConfig] = None):
        """Install an InfiniBand HCA."""
        from .ib import Hca

        if self.nic is not None:
            raise ConfigError(f"node {self.node_id} already has a NIC")
        hca = Hca(self.sim, self.node_id, config=config)
        hca.attach(self.pcie, MMIO_BASE, endpoint, link_config)
        self.nic = hca
        return hca

    # -- convenience ---------------------------------------------------------------
    def host_malloc(self, size: int) -> AddressRange:
        return self.user_alloc.alloc(size)

    def gpu_malloc(self, size: int) -> AddressRange:
        return self.gpu.malloc(size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.node_id}>"
